//! Interior gateway protocol: per-AS all-pairs shortest paths.
//!
//! Paper §3: "Routers within an AS route packets according to an interior
//! gateway protocol … Although many small ASes still use raw hop counts to
//! select internal routes, most larger ASes set internal metrics manually to
//! distribute load and to avoid using links with excessive propagation
//! delay." We model both: an AS either weighs every internal link `1.0`
//! (hop count) or by its propagation delay (the manual delay-aware
//! configuration).
//!
//! ASes here are small (≤ ~25 POPs), so a Floyd-Warshall table per AS is
//! simple, robust, and plenty fast.

use crate::topology::{AsId, LinkKind, RouterId, Topology};

/// All-pairs shortest-path table for one AS.
#[derive(Debug, Clone)]
pub struct IgpTable {
    /// Owning AS.
    pub asn: AsId,
    /// The AS's routers, defining the local index space.
    routers: Vec<RouterId>,
    /// `dist[i][j]`: metric distance from router i to router j.
    dist: Vec<Vec<f64>>,
    /// `delay[i][j]`: propagation delay (ms) along the chosen path — used
    /// for hot-potato comparisons even when the metric is hop count.
    delay: Vec<Vec<f64>>,
    /// `next[i][j]`: local index of the next router on the path i→j.
    next: Vec<Vec<usize>>,
}

impl IgpTable {
    /// Computes the table for `asn` over the internal links of `topo`.
    ///
    /// The metric is hop count unless the AS is configured with
    /// delay-aware metrics (`igp_uses_delay_metrics`).
    pub fn compute(topo: &Topology, asn: AsId) -> IgpTable {
        let asys = topo.asys(asn);
        let routers = asys.routers.clone();
        let n = routers.len();
        let idx = |r: RouterId| routers.iter().position(|&x| x == r);

        const INF: f64 = f64::INFINITY;
        let mut dist = vec![vec![INF; n]; n];
        let mut delay = vec![vec![INF; n]; n];
        let mut next = vec![vec![usize::MAX; n]; n];
        for i in 0..n {
            dist[i][i] = 0.0;
            delay[i][i] = 0.0;
            next[i][i] = i;
        }
        for (i, &r) in routers.iter().enumerate() {
            for l in topo.links_from(r) {
                if l.kind != LinkKind::Internal || topo.router(l.to).asn != asn {
                    continue;
                }
                let j = idx(l.to).expect("internal link targets AS router");
                let w = if asys.igp_uses_delay_metrics {
                    l.prop_delay_ms
                } else {
                    1.0
                };
                if w < dist[i][j] {
                    dist[i][j] = w;
                    delay[i][j] = l.prop_delay_ms;
                    next[i][j] = j;
                }
            }
        }
        // Floyd-Warshall; ties broken toward the earlier intermediate for
        // determinism.
        for k in 0..n {
            for i in 0..n {
                if dist[i][k] == INF {
                    continue;
                }
                for j in 0..n {
                    let through = dist[i][k] + dist[k][j];
                    if through < dist[i][j] {
                        dist[i][j] = through;
                        delay[i][j] = delay[i][k] + delay[k][j];
                        next[i][j] = next[i][k];
                    }
                }
            }
        }
        IgpTable {
            asn,
            routers,
            dist,
            delay,
            next,
        }
    }

    fn index(&self, r: RouterId) -> usize {
        self.routers
            .iter()
            .position(|&x| x == r)
            .unwrap_or_else(|| panic!("router {r:?} not in AS {:?}", self.asn))
    }

    /// Metric distance between two routers of this AS.
    pub fn distance(&self, a: RouterId, b: RouterId) -> f64 {
        self.dist[self.index(a)][self.index(b)]
    }

    /// Propagation delay (ms) along the selected internal path.
    pub fn path_delay_ms(&self, a: RouterId, b: RouterId) -> f64 {
        self.delay[self.index(a)][self.index(b)]
    }

    /// The router sequence from `a` to `b` (inclusive of both endpoints).
    ///
    /// # Panics
    /// Panics if no internal path exists (generation guarantees backbones
    /// are connected).
    pub fn path(&self, a: RouterId, b: RouterId) -> Vec<RouterId> {
        let (mut i, j) = (self.index(a), self.index(b));
        assert!(
            self.next[i][j] != usize::MAX,
            "no IGP path {a:?}→{b:?} inside {:?}",
            self.asn
        );
        let mut out = vec![a];
        while i != j {
            i = self.next[i][j];
            out.push(self.routers[i]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::generator::{generate, Era, TopologyConfig};
    use detour_prng::Xoshiro256pp;

    fn topo() -> Topology {
        generate(
            &TopologyConfig::for_era(Era::Y1999),
            &mut Xoshiro256pp::seed_from_u64(42),
        )
    }

    #[test]
    fn distance_to_self_is_zero() {
        let t = topo();
        for asys in &t.ases {
            let igp = IgpTable::compute(&t, asys.id);
            for &r in &asys.routers {
                assert_eq!(igp.distance(r, r), 0.0);
                assert_eq!(igp.path(r, r), vec![r]);
            }
        }
    }

    #[test]
    fn all_pairs_reachable_within_as() {
        let t = topo();
        for asys in &t.ases {
            let igp = IgpTable::compute(&t, asys.id);
            for &a in &asys.routers {
                for &b in &asys.routers {
                    assert!(igp.distance(a, b).is_finite(), "{:?}: {a:?}→{b:?}", asys.id);
                }
            }
        }
    }

    #[test]
    fn paths_are_consistent_with_distances() {
        let t = topo();
        let asys = t
            .ases
            .iter()
            .find(|a| a.routers.len() >= 4)
            .expect("a big AS");
        let igp = IgpTable::compute(&t, asys.id);
        for &a in &asys.routers {
            for &b in &asys.routers {
                let p = igp.path(a, b);
                assert_eq!(p.first(), Some(&a));
                assert_eq!(p.last(), Some(&b));
                // Each consecutive pair must be joined by an internal link,
                // and delays must telescope.
                let mut total_delay = 0.0;
                for w in p.windows(2) {
                    let l = t.link_between(w[0], w[1]).expect("link exists");
                    assert_eq!(l.kind, LinkKind::Internal);
                    total_delay += l.prop_delay_ms;
                }
                assert!((total_delay - igp.path_delay_ms(a, b)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn hop_count_as_counts_hops() {
        let t = topo();
        let asys = t
            .ases
            .iter()
            .find(|a| !a.igp_uses_delay_metrics && a.routers.len() >= 3)
            .expect("a hop-count AS with several POPs");
        let igp = IgpTable::compute(&t, asys.id);
        for &a in &asys.routers {
            for &b in &asys.routers {
                let hops = igp.path(a, b).len() as f64 - 1.0;
                assert_eq!(igp.distance(a, b), hops);
            }
        }
    }

    #[test]
    fn triangle_inequality_holds() {
        let t = topo();
        let asys = t.ases.iter().find(|a| a.routers.len() >= 3).unwrap();
        let igp = IgpTable::compute(&t, asys.id);
        let rs = &asys.routers;
        for &a in rs {
            for &b in rs {
                for &c in rs {
                    assert!(igp.distance(a, c) <= igp.distance(a, b) + igp.distance(b, c) + 1e-9);
                }
            }
        }
    }
}
