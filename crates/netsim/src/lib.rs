//! # detour-netsim
//!
//! The Internet substrate for the reproduction of *"The End-to-End Effects
//! of Internet Path Selection"* (SIGCOMM 1999).
//!
//! The paper is trace-driven: it measured the 1995–1999 Internet. Those
//! traces no longer exist and cannot be re-taken, so this crate rebuilds
//! the *mechanisms* the paper identifies as the causes of routing
//! inefficiency and lets the measurement machinery of `detour-measure`
//! collect equivalent traces:
//!
//! * hierarchical AS topology with geographic embedding — [`topology`],
//!   [`geo`];
//! * two-level routing: per-AS IGPs below BGP-style policy routing with
//!   customer/peer/provider preferences, no-valley export, shortest-AS-path
//!   tie-breaking, and early-exit (hot-potato) egress selection —
//!   [`routing`];
//! * diurnal/weekly load, hot public exchange points, transient congestion
//!   events, M/M/1-shaped queuing delay and knee-shaped loss — [`traffic`];
//! * route-flap episodes — [`routing::flaps`];
//! * the probe tools the original study drove: `ping`, `traceroute` (with
//!   ICMP rate limiting), and bulk TCP transfers with Mathis-model
//!   throughput — [`probe`], [`tcp`];
//! * a simulation clock/calendar and a deterministic event queue — [`sim`].
//!
//! Everything is deterministic given a seed. The crate is synchronous and
//! single-threaded by design: simulated time is driven by the caller, and
//! the workload is CPU-bound (an async runtime would add nothing — see the
//! Tokio guide's own "when not to use Tokio").

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::print_stdout, clippy::print_stderr)]

pub mod geo;
pub mod net;
pub mod probe;
pub mod routing;
pub mod sim;
pub mod tcp;
pub mod topology;
pub mod traffic;

pub use detour_faults::FaultConfig;
pub use net::{Network, NetworkConfig, TransitOutcome};
pub use probe::{ping, traceroute, PingResult, TracerouteResult};
pub use routing::RoutingMode;
pub use sim::{Calendar, DayKind, SimTime};
pub use tcp::{bulk_transfer, mathis_throughput_bps, TransferStats};
pub use topology::generator::Era;
pub use topology::{AsId, HostId, LinkId, RouterId};
