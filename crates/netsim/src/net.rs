//! The assembled network: topology + routing + load, queried over time.
//!
//! [`Network`] is the simulator's public face. Everything above it (the
//! measurement machinery, the datasets) sees only *observable* behavior —
//! resolve a path, send a probe, run a transfer — mirroring the information
//! barrier real measurement tools face: they cannot see utilization or
//! routing tables, only packets.
//!
//! A generated network is **immutable and `Send + Sync`** by construction:
//! everything measurement-relevant — the flap schedule of every ordered AS
//! pair and the resolved router path of every (host-router, host-router,
//! flapped) triple — is computed eagerly at generation time (in parallel,
//! per source, over the `detour-pool` workers), so [`Network::forward_path`]
//! is a lock-free array read and a campaign can fan requests out across
//! threads without any synchronization. The earlier design cached paths and
//! flap schedules lazily behind `RefCell`s, which pinned the whole
//! measurement pipeline to one thread and grew without bound; the caches
//! are gone, not wrapped.

use std::sync::Arc;

use detour_faults::{FaultConfig, FaultPlan, OutageSchedule, RoutePhase, WithdrawalSchedule};
use detour_prng::Rng;

use crate::routing::flaps::{FlapConfig, FlapSchedule};
use crate::routing::path::{ResolvedPath, Resolver};
use crate::routing::RoutingMode;
use crate::sim::clock::SimTime;
use crate::topology::{
    generator::{self, Era, TopologyConfig},
    RouterId,
};
use crate::topology::{AsId, Host, HostId, Topology};
use crate::traffic::load::{LoadConfig, LoadModel};

/// Everything needed to build a [`Network`].
#[derive(Debug, Clone)]
pub struct NetworkConfig {
    /// Topology shape.
    pub topology: TopologyConfig,
    /// Load process tuning.
    pub load: LoadConfig,
    /// Route-flap process tuning.
    pub flaps: FlapConfig,
    /// Path-selection mode (the ablation knob).
    pub mode: RoutingMode,
    /// Master seed; every stochastic component derives from it.
    pub seed: u64,
    /// Simulated horizon in seconds (trace duration).
    pub horizon_s: f64,
    /// Fault-injection knobs ([`FaultConfig::none`] in every era default;
    /// the network only consumes the link/router/withdrawal classes).
    pub faults: FaultConfig,
}

impl NetworkConfig {
    /// Era defaults with the given seed and horizon in days.
    pub fn for_era(era: Era, seed: u64, horizon_days: f64) -> NetworkConfig {
        NetworkConfig {
            topology: TopologyConfig::for_era(era),
            load: LoadConfig::for_era(era),
            flaps: FlapConfig::default(),
            mode: RoutingMode::PolicyHotPotato,
            seed,
            horizon_s: horizon_days * 86_400.0,
            faults: FaultConfig::none(),
        }
    }
}

/// Fixed per-router forwarding/processing delay, one way, milliseconds.
pub const PER_HOP_PROCESSING_MS: f64 = 0.05;

/// Outcome of pushing one packet across a resolved path once.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransitOutcome {
    /// Total one-way delay (propagation + queuing + processing), ms.
    /// Meaningful even when `lost` (the delay accumulated up to the drop is
    /// not reported separately; callers treat lost packets as lost).
    pub delay_ms: f64,
    /// Whether the packet was dropped on some link.
    pub lost: bool,
}

/// A generated network instance.
///
/// `Send + Sync`: all state is immutable after generation (asserted at
/// compile time below), so campaigns may probe one network from many
/// threads concurrently.
pub struct Network {
    /// The static topology (public: analyses inspect AS ownership etc.).
    pub topology: Topology,
    resolver: Resolver,
    load: LoadModel,
    mode: RoutingMode,
    horizon_s: f64,
    /// Router id → slot in the host-router index space (`u32::MAX` for
    /// routers no host attaches to — they never terminate a measurement).
    router_slot: Vec<u32>,
    /// Number of distinct host-attachment routers (the slot space).
    n_slots: usize,
    /// Flat path table: `(src_slot * n_slots + dst_slot) * 2 + flapped`.
    /// `Arc` so callers share one resolution, as they shared the old
    /// cache's `Rc`s — but now across threads.
    paths: Vec<Option<Arc<ResolvedPath>>>,
    /// Flat per-ordered-AS-pair flap schedules: `src_as * n_as + dst_as`.
    flap_table: Vec<FlapSchedule>,
    n_as: usize,
    /// Injected-fault tables; `None` when the config has no network
    /// faults, keeping the benign path untouched.
    faults: Option<NetworkFaultTables>,
}

/// Precomputed per-entity fault schedules. Like the flap table, every
/// schedule depends only on `(fault seed, domain, entity id)` — generated
/// in parallel but bit-identical at every thread count.
struct NetworkFaultTables {
    /// Per-link outage schedules, indexed by `LinkId`.
    link_down: Vec<OutageSchedule>,
    /// Per-router outage schedules, indexed by `RouterId`.
    router_down: Vec<OutageSchedule>,
    /// Per-ordered-AS-pair withdrawal schedules: `src_as * n_as + dst_as`.
    withdrawals: Vec<WithdrawalSchedule>,
}

// The whole point of the precomputed design: a campaign can fan out over
// requests only if sharing `&Network` across threads is sound. Pin it so a
// future `RefCell` cannot sneak back in unnoticed.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Network>();
};

impl Network {
    /// Generates a network from `cfg`. Deterministic in `cfg.seed`.
    ///
    /// Reports where the build time went through the current `detour-obs`
    /// recorder: `net/build` covers topology generation + IGP/BGP routing
    /// tables + the load model, `net/routing` the eager precomputation of
    /// the flap-schedule, fault, and path tables.
    pub fn generate(cfg: &NetworkConfig) -> Network {
        let rec = detour_obs::current();
        let build_span = rec.span("net/build");
        let mut rng = detour_prng::Xoshiro256pp::seed_from_u64(cfg.seed);
        let topology = generator::generate(&cfg.topology, &mut rng);
        let resolver = Resolver::new(&topology);
        let load = LoadModel::generate(&topology, cfg.load, cfg.seed, cfg.horizon_s);
        build_span.finish();

        let routing_span = rec.span("net/routing");
        let n_as = topology.as_count();
        let flap_table = precompute_flaps(&cfg.flaps, cfg.seed, n_as, cfg.horizon_s);

        // Host-attachment routers define the measurement-relevant slot
        // space; every forward path a probe can ever ask for starts and
        // ends on one of them.
        let mut slots: Vec<RouterId> = topology.hosts.iter().map(|h| h.router).collect();
        slots.sort_unstable();
        slots.dedup();
        let mut router_slot = vec![u32::MAX; topology.routers.len()];
        for (i, &r) in slots.iter().enumerate() {
            router_slot[r.0 as usize] = i as u32;
        }
        let faults = cfg
            .faults
            .network_faults()
            .then(|| precompute_faults(&cfg.faults, &topology, n_as, cfg.horizon_s));
        let paths = precompute_paths(
            &topology,
            &resolver,
            &flap_table,
            faults.as_ref().map(|f| f.withdrawals.as_slice()),
            n_as,
            &slots,
            cfg.mode,
        );
        routing_span.finish();

        Network {
            topology,
            resolver,
            load,
            mode: cfg.mode,
            horizon_s: cfg.horizon_s,
            router_slot,
            n_slots: slots.len(),
            paths,
            flap_table,
            n_as,
            faults,
        }
    }

    /// All hosts.
    pub fn hosts(&self) -> &[Host] {
        &self.topology.hosts
    }

    /// One host.
    pub fn host(&self, id: HostId) -> &Host {
        self.topology.host(id)
    }

    /// The routing state (read-only; used by analyses and tests).
    pub fn resolver(&self) -> &Resolver {
        &self.resolver
    }

    /// The load model (read-only; used by ablation benches).
    pub fn load(&self) -> &LoadModel {
        &self.load
    }

    /// Routing mode in force.
    pub fn mode(&self) -> RoutingMode {
        self.mode
    }

    /// Simulated horizon, seconds.
    pub fn horizon_s(&self) -> f64 {
        self.horizon_s
    }

    /// The precomputed flap schedule for an ordered AS pair.
    pub fn flap_schedule(&self, src: AsId, dst: AsId) -> &FlapSchedule {
        &self.flap_table[src.0 as usize * self.n_as + dst.0 as usize]
    }

    /// The injected withdrawal schedule for an ordered AS pair, if any
    /// network faults were configured.
    pub fn withdrawal_schedule(&self, src: AsId, dst: AsId) -> Option<&WithdrawalSchedule> {
        self.faults
            .as_ref()
            .map(|f| &f.withdrawals[src.0 as usize * self.n_as + dst.0 as usize])
    }

    /// Total injected (link, router, withdrawal) episodes across all
    /// entities — `(0, 0, 0)` without faults. Diagnostics for chaos tests
    /// and degraded reports.
    pub fn fault_episode_counts(&self) -> (usize, usize, usize) {
        match &self.faults {
            None => (0, 0, 0),
            Some(f) => (
                f.link_down.iter().map(|s| s.episode_count()).sum(),
                f.router_down.iter().map(|s| s.episode_count()).sum(),
                f.withdrawals.iter().map(|s| s.episode_count()).sum(),
            ),
        }
    }

    /// Resolves the forward router path from `src` to `dst` hosts at time
    /// `t`, honoring any active flap episode at the source AS.
    ///
    /// A lock-free read of the precomputed path table — safe to call from
    /// any number of threads concurrently.
    ///
    /// Returns `None` when routing cannot produce a path (does not happen
    /// on generated topologies, but callers must treat it as a measurement
    /// failure, not a panic — real traceroutes fail too).
    /// Returns `None` during an injected BGP withdrawal (the route is
    /// blackholed until convergence starts); the convergence tail routes
    /// via the second-choice path, like a flap episode.
    pub fn forward_path(&self, src: HostId, dst: HostId, t: SimTime) -> Option<Arc<ResolvedPath>> {
        let sh = self.topology.host(src);
        let dh = self.topology.host(dst);
        let mut flapped = self.mode != RoutingMode::GlobalShortestDelay
            && self.flap_schedule(sh.asn, dh.asn).active_at(t.0);
        if self.mode != RoutingMode::GlobalShortestDelay {
            if let Some(f) = &self.faults {
                match f.withdrawals[sh.asn.0 as usize * self.n_as + dh.asn.0 as usize].phase_at(t.0)
                {
                    RoutePhase::Withdrawn => return None,
                    RoutePhase::Converging => flapped = true,
                    RoutePhase::Stable => {}
                }
            }
        }
        let i = self.router_slot[sh.router.0 as usize] as usize;
        let j = self.router_slot[dh.router.0 as usize] as usize;
        self.paths[(i * self.n_slots + j) * 2 + flapped as usize].clone()
    }

    /// Sends one packet across `path` at time `t`, sampling queuing delay
    /// and loss on each link.
    pub fn transit(&self, path: &ResolvedPath, t: SimTime, rng: &mut impl Rng) -> TransitOutcome {
        let mut delay = PER_HOP_PROCESSING_MS * path.routers.len() as f64;
        // Injected outages drop the packet deterministically (no RNG
        // draw), so the load-sampling stream below is unperturbed: a
        // faulted run differs from the benign run only where a fault is
        // actually active.
        let mut lost = self.faulted_element(&path.routers, &path.links, t);
        for &l in &path.links {
            let link = self.topology.link(l);
            let s = self.load.sample(l, t, rng);
            delay += link.prop_delay_ms + s.queue_delay_ms;
            if s.lost {
                lost = true;
            }
        }
        TransitOutcome {
            delay_ms: delay,
            lost,
        }
    }

    /// Like [`Network::transit`] but over only the first `prefix_links`
    /// links of `path` (traceroute probing an intermediate hop).
    pub fn transit_prefix(
        &self,
        path: &ResolvedPath,
        prefix_links: usize,
        t: SimTime,
        rng: &mut impl Rng,
    ) -> TransitOutcome {
        let n = prefix_links.min(path.links.len());
        let mut delay = PER_HOP_PROCESSING_MS * (n + 1) as f64;
        let routers = &path.routers[..(n + 1).min(path.routers.len())];
        let mut lost = self.faulted_element(routers, &path.links[..n], t);
        for &l in &path.links[..n] {
            let link = self.topology.link(l);
            let s = self.load.sample(l, t, rng);
            delay += link.prop_delay_ms + s.queue_delay_ms;
            if s.lost {
                lost = true;
            }
        }
        TransitOutcome {
            delay_ms: delay,
            lost,
        }
    }

    /// True when any router or link on the (sub)path is inside an injected
    /// outage episode at `t`. Pure schedule lookups — no RNG.
    fn faulted_element(
        &self,
        routers: &[RouterId],
        links: &[crate::topology::LinkId],
        t: SimTime,
    ) -> bool {
        let Some(f) = &self.faults else {
            return false;
        };
        routers
            .iter()
            .any(|r| f.router_down[r.0 as usize].down_at(t.0))
            || links.iter().any(|l| f.link_down[l.0 as usize].down_at(t.0))
    }
}

/// Generates the per-link, per-router, and per-AS-pair fault schedules —
/// in parallel, but each schedule is a pure function of the fault seed and
/// the entity's id, so the tables are identical at every thread count.
fn precompute_faults(
    cfg: &FaultConfig,
    topo: &Topology,
    n_as: usize,
    horizon_s: f64,
) -> NetworkFaultTables {
    let plan = FaultPlan::new(*cfg, horizon_s);
    let link_ids: Vec<u64> = (0..topo.links.len() as u64).collect();
    let router_ids: Vec<u64> = (0..topo.routers.len() as u64).collect();
    let sources: Vec<u16> = (0..n_as as u16).collect();
    NetworkFaultTables {
        link_down: detour_pool::parallel_map(&link_ids, |&l| plan.link_schedule(l)),
        router_down: detour_pool::parallel_map(&router_ids, |&r| plan.router_schedule(r)),
        withdrawals: detour_pool::parallel_map(&sources, |&src| {
            (0..n_as as u16)
                .map(|dst| plan.withdrawal_schedule(src, dst))
                .collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect(),
    }
}

/// Generates the flap schedule of every ordered AS pair, in parallel per
/// source AS. Each schedule depends only on `(seed, src, dst)` — exactly
/// the derivation the old lazy cache used — so the table is bit-identical
/// to what lazy generation would have produced, at every thread count.
fn precompute_flaps(cfg: &FlapConfig, seed: u64, n_as: usize, horizon_s: f64) -> Vec<FlapSchedule> {
    let sources: Vec<u16> = (0..n_as as u16).collect();
    detour_pool::parallel_map(&sources, |&src| {
        (0..n_as as u16)
            .map(|dst| FlapSchedule::generate(cfg, seed, AsId(src), AsId(dst), horizon_s))
            .collect::<Vec<_>>()
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Resolves the full (host-router × host-router × flapped) path table, in
/// parallel per source router.
///
/// Two economies keep this cheap without changing any observable path:
///
/// * The flapped variant is only resolved when some AS pair routed between
///   the two routers can actually use it — its flap schedule has episodes
///   inside the horizon, or an injected withdrawal's convergence tail can
///   send it to the second-choice route; otherwise the unflapped `Arc` is
///   shared — `forward_path` only consults the flapped slot during an
///   active episode.
/// * Under `GlobalShortestDelay` one Dijkstra per source covers every
///   destination (and flaps are ignored by definition, so both slots share
///   one path).
fn precompute_paths(
    topo: &Topology,
    resolver: &Resolver,
    flap_table: &[FlapSchedule],
    withdrawals: Option<&[WithdrawalSchedule]>,
    n_as: usize,
    slots: &[RouterId],
    mode: RoutingMode,
) -> Vec<Option<Arc<ResolvedPath>>> {
    let rows = detour_pool::parallel_map(slots, |&src| {
        let mut row: Vec<Option<Arc<ResolvedPath>>> = Vec::with_capacity(slots.len() * 2);
        if mode == RoutingMode::GlobalShortestDelay {
            for p in resolver.resolve_global_all(topo, src, slots) {
                let p = p.map(Arc::new);
                row.push(p.clone());
                row.push(p);
            }
            return row;
        }
        let src_as = topo.router(src).asn;
        for &dst in slots {
            let dst_as = topo.router(dst).asn;
            let base = resolver.resolve(topo, src, dst, mode, false).map(Arc::new);
            let pair = src_as.0 as usize * n_as + dst_as.0 as usize;
            let can_flap = flap_table[pair].episode_count() > 0
                || withdrawals.is_some_and(|w| w[pair].episode_count() > 0);
            let flapped = if can_flap {
                resolver.resolve(topo, src, dst, mode, true).map(Arc::new)
            } else {
                base.clone()
            };
            row.push(base);
            row.push(flapped);
        }
        row
    });
    rows.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use detour_prng::Xoshiro256pp;

    fn net() -> Network {
        Network::generate(&NetworkConfig::for_era(Era::Y1999, 77, 7.0))
    }

    #[test]
    fn generation_is_deterministic() {
        let a = net();
        let b = net();
        assert_eq!(a.hosts().len(), b.hosts().len());
        let t = SimTime::from_hours(40.0);
        let (h0, h1) = (a.hosts()[0].id, a.hosts()[7].id);
        let pa = a.forward_path(h0, h1, t).unwrap();
        let pb = b.forward_path(h0, h1, t).unwrap();
        assert_eq!(pa.routers, pb.routers);
    }

    #[test]
    fn forward_paths_exist_between_all_host_pairs() {
        let n = net();
        let hosts: Vec<HostId> = n.hosts().iter().map(|h| h.id).collect();
        let t = SimTime::from_hours(10.0);
        for &s in hosts.iter().take(12) {
            for &d in hosts.iter().rev().take(12) {
                if s != d {
                    assert!(n.forward_path(s, d, t).is_some(), "{s:?}→{d:?}");
                }
            }
        }
    }

    #[test]
    fn transit_delay_exceeds_propagation() {
        let n = net();
        let t = SimTime::from_hours(34.0);
        let p = n.forward_path(n.hosts()[0].id, n.hosts()[9].id, t).unwrap();
        let prop = p.prop_delay_ms(&n.topology);
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        for _ in 0..50 {
            let out = n.transit(&p, t, &mut rng);
            assert!(out.delay_ms > prop, "queuing must add delay");
        }
    }

    #[test]
    fn busy_hours_are_slower_on_average() {
        let n = net();
        let p = n
            .forward_path(n.hosts()[2].id, n.hosts()[11].id, SimTime::ZERO)
            .unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(8);
        let avg = |t: SimTime, rng: &mut Xoshiro256pp| -> f64 {
            (0..300)
                .map(|_| n.transit(&p, t, rng).delay_ms)
                .sum::<f64>()
                / 300.0
        };
        // Tuesday 11:00 PST vs Tuesday 03:30 PST (most hosts are NA).
        let busy = avg(SimTime::from_hours(24.0 + 19.0), &mut rng);
        let quiet = avg(SimTime::from_hours(24.0 + 11.5), &mut rng);
        assert!(busy > quiet, "busy {busy} vs quiet {quiet}");
    }

    #[test]
    fn losses_happen_but_are_not_dominant() {
        let n = net();
        let t = SimTime::from_hours(30.0);
        let hosts: Vec<HostId> = n.hosts().iter().map(|h| h.id).collect();
        let mut rng = Xoshiro256pp::seed_from_u64(12);
        let mut lost = 0;
        let mut total = 0;
        for &s in hosts.iter().take(10) {
            for &d in hosts.iter().rev().take(10) {
                if s == d {
                    continue;
                }
                let p = n.forward_path(s, d, t).unwrap();
                for _ in 0..20 {
                    total += 1;
                    if n.transit(&p, t, &mut rng).lost {
                        lost += 1;
                    }
                }
            }
        }
        let rate = lost as f64 / total as f64;
        assert!(rate > 0.001, "some loss expected, got {rate}");
        assert!(rate < 0.25, "loss should not dominate, got {rate}");
    }

    #[test]
    fn prefix_transit_is_cheaper_than_full() {
        let n = net();
        let t = SimTime::from_hours(16.0);
        let p = n
            .forward_path(n.hosts()[1].id, n.hosts()[13].id, t)
            .unwrap();
        assert!(p.links.len() >= 2);
        let mut rng = Xoshiro256pp::seed_from_u64(21);
        let prefix_avg: f64 = (0..100)
            .map(|_| n.transit_prefix(&p, 1, t, &mut rng).delay_ms)
            .sum::<f64>()
            / 100.0;
        let full_avg: f64 = (0..100)
            .map(|_| n.transit(&p, t, &mut rng).delay_ms)
            .sum::<f64>()
            / 100.0;
        assert!(prefix_avg < full_avg);
    }

    #[test]
    fn route_flaps_change_paths_over_time() {
        // Crank the flap process (an episode every ~2 h, ~30 min long) so
        // the 2-day horizon reliably contains flapped measurement times for
        // some pair, then observe forward_path switching routes.
        let mut cfg = NetworkConfig::for_era(Era::Y1999, 515, 2.0);
        cfg.flaps = crate::routing::flaps::FlapConfig {
            mean_interval_s: 2.0 * 3600.0,
            mean_duration_s: 30.0 * 60.0,
        };
        let n = Network::generate(&cfg);
        let hosts: Vec<HostId> = n.hosts().iter().map(|h| h.id).collect();
        let mut saw_change = false;
        'outer: for &s in hosts.iter().take(12) {
            for &d in hosts.iter().rev().take(12) {
                if s == d {
                    continue;
                }
                let baseline = n.forward_path(s, d, SimTime::ZERO).unwrap();
                for hour in 1..48 {
                    let p = n
                        .forward_path(s, d, SimTime::from_hours(hour as f64))
                        .unwrap();
                    if p.routers != baseline.routers {
                        saw_change = true;
                        break 'outer;
                    }
                }
            }
        }
        assert!(
            saw_change,
            "no pair ever flapped in 48 hours at high flap rate"
        );
    }

    #[test]
    fn global_mode_ignores_flaps() {
        let mut cfg = NetworkConfig::for_era(Era::Y1999, 515, 2.0);
        cfg.flaps = crate::routing::flaps::FlapConfig {
            mean_interval_s: 3600.0,
            mean_duration_s: 1800.0,
        };
        cfg.mode = RoutingMode::GlobalShortestDelay;
        let n = Network::generate(&cfg);
        let (s, d) = (n.hosts()[0].id, n.hosts()[9].id);
        let baseline = n.forward_path(s, d, SimTime::ZERO).unwrap();
        for hour in 1..48 {
            let p = n
                .forward_path(s, d, SimTime::from_hours(hour as f64))
                .unwrap();
            assert_eq!(p.routers, baseline.routers, "ideal routing must be static");
        }
    }

    #[test]
    fn path_table_is_shared_not_copied() {
        // The precomputed table hands every caller the same Arc, as the old
        // lazy cache handed out the same Rc — resolution work is never
        // repeated per query.
        let n = net();
        let t = SimTime::from_hours(5.0);
        let (s, d) = (n.hosts()[0].id, n.hosts()[4].id);
        let a = n.forward_path(s, d, t).unwrap();
        let b = n.forward_path(s, d, t).unwrap();
        assert!(
            Arc::ptr_eq(&a, &b),
            "both queries must share the precomputed path"
        );
    }

    #[test]
    fn network_is_send_and_sync() {
        fn check<T: Send + Sync>(_: &T) {}
        check(&net());
    }

    #[test]
    fn precomputed_paths_match_direct_resolution() {
        // The table must hold exactly what the resolver would produce on
        // demand — for the unflapped and the flapped variant alike.
        let n = net();
        let hosts: Vec<HostId> = n.hosts().iter().map(|h| h.id).collect();
        for &s in hosts.iter().take(6) {
            for &d in hosts.iter().rev().take(6) {
                if s == d {
                    continue;
                }
                let table = n.forward_path(s, d, SimTime::ZERO).unwrap();
                let direct = n
                    .resolver()
                    .resolve(
                        &n.topology,
                        n.host(s).router,
                        n.host(d).router,
                        n.mode(),
                        false,
                    )
                    .unwrap();
                assert_eq!(*table, direct);
            }
        }
    }

    #[test]
    fn benign_config_builds_no_fault_tables() {
        let n = net();
        assert_eq!(n.fault_episode_counts(), (0, 0, 0));
        assert!(n.withdrawal_schedule(AsId(0), AsId(1)).is_none());
    }

    #[test]
    fn faulted_network_is_identical_to_benign_when_no_fault_is_active() {
        // Deterministic fault drops draw no RNG, so outside fault episodes
        // the faulted network transits packets identically.
        let mut cfg = NetworkConfig::for_era(Era::Y1999, 77, 7.0);
        let benign = Network::generate(&cfg);
        cfg.faults = detour_faults::FaultConfig::link_failures(5);
        let faulted = Network::generate(&cfg);
        let (s, d) = (benign.hosts()[0].id, benign.hosts()[9].id);
        let mut checked = 0;
        for hour in 0..48 {
            let t = SimTime::from_hours(hour as f64);
            let p = benign.forward_path(s, d, t).unwrap();
            if faulted.faulted_element(&p.routers, &p.links, t) {
                continue; // some link on the path is down right now
            }
            let mut ra = Xoshiro256pp::seed_from_u64(hour);
            let mut rb = Xoshiro256pp::seed_from_u64(hour);
            assert_eq!(
                benign.transit(&p, t, &mut ra),
                faulted.transit(&p, t, &mut rb)
            );
            checked += 1;
        }
        assert!(checked > 0, "some fault-free instants must exist");
    }

    #[test]
    fn link_outages_drop_packets_deterministically() {
        let mut cfg = NetworkConfig::for_era(Era::Y1999, 77, 7.0);
        // Crank link failures so episodes are plentiful inside a week.
        cfg.faults = detour_faults::FaultConfig::link_failures(5);
        cfg.faults.link_mtbf_s = 6.0 * 3600.0;
        cfg.faults.link_mttr_s = 3600.0;
        let n = Network::generate(&cfg);
        let (l, r, w) = n.fault_episode_counts();
        assert!(l > 0, "high link failure rate must produce episodes");
        assert_eq!((r, w), (0, 0), "only links were enabled");

        // During an active episode on a path's link, every packet drops
        // regardless of the RNG.
        let hosts: Vec<HostId> = n.hosts().iter().map(|h| h.id).collect();
        let mut saw_outage = false;
        'outer: for &s in hosts.iter().take(10) {
            for &d in hosts.iter().rev().take(10) {
                if s == d {
                    continue;
                }
                for hour in 0..(7 * 24) {
                    let t = SimTime::from_hours(hour as f64);
                    let p = n.forward_path(s, d, t).unwrap();
                    if n.faulted_element(&p.routers, &p.links, t) {
                        for k in 0..5u64 {
                            let mut rng = Xoshiro256pp::seed_from_u64(k);
                            assert!(n.transit(&p, t, &mut rng).lost);
                            let mut rng = Xoshiro256pp::seed_from_u64(k);
                            assert!(n.transit_prefix(&p, p.links.len(), t, &mut rng).lost);
                        }
                        saw_outage = true;
                        break 'outer;
                    }
                }
            }
        }
        assert!(saw_outage, "no probed path crossed a down link in a week");
    }

    #[test]
    fn withdrawals_blackhole_then_route_second_choice() {
        let mut cfg = NetworkConfig::for_era(Era::Y1999, 515, 7.0);
        cfg.faults = detour_faults::FaultConfig::withdrawals(9);
        cfg.faults.withdraw_mtbf_s = 12.0 * 3600.0;
        cfg.faults.withdraw_mttr_s = 1800.0;
        let n = Network::generate(&cfg);
        let (_, _, w) = n.fault_episode_counts();
        assert!(w > 0);

        let hosts: Vec<HostId> = n.hosts().iter().map(|h| h.id).collect();
        let mut saw_blackhole = false;
        for &s in hosts.iter().take(12) {
            for &d in hosts.iter().rev().take(12) {
                if s == d {
                    continue;
                }
                let (sh, dh) = (n.host(s).asn, n.host(d).asn);
                let sched = n.withdrawal_schedule(sh, dh).unwrap().clone();
                for hour in 0..(7 * 24 * 4) {
                    let t = SimTime(hour as f64 * 900.0);
                    match sched.phase_at(t.0) {
                        detour_faults::RoutePhase::Withdrawn => {
                            assert!(
                                n.forward_path(s, d, t).is_none(),
                                "withdrawn route must blackhole"
                            );
                            saw_blackhole = true;
                        }
                        _ => assert!(n.forward_path(s, d, t).is_some()),
                    }
                }
            }
        }
        assert!(saw_blackhole, "no withdrawal hit a measured pair");
    }

    #[test]
    fn fault_tables_are_thread_count_independent() {
        let mut cfg = NetworkConfig::for_era(Era::Y1999, 77, 7.0);
        cfg.faults = detour_faults::FaultConfig::heavy(13);
        detour_pool::set_threads(1);
        let a = Network::generate(&cfg);
        detour_pool::set_threads(8);
        let b = Network::generate(&cfg);
        detour_pool::set_threads(0);
        assert_eq!(a.fault_episode_counts(), b.fault_episode_counts());
        let (s, d) = (a.hosts()[0].id, a.hosts()[9].id);
        for hour in 0..(7 * 24) {
            let t = SimTime::from_hours(hour as f64);
            assert_eq!(
                a.forward_path(s, d, t).map(|p| p.routers.clone()),
                b.forward_path(s, d, t).map(|p| p.routers.clone())
            );
        }
    }

    #[test]
    fn global_mode_table_matches_pairwise_dijkstra() {
        let mut cfg = NetworkConfig::for_era(Era::Y1999, 99, 2.0);
        cfg.mode = RoutingMode::GlobalShortestDelay;
        let n = Network::generate(&cfg);
        let hosts: Vec<HostId> = n.hosts().iter().map(|h| h.id).collect();
        for &s in hosts.iter().take(5) {
            for &d in hosts.iter().rev().take(5) {
                if s == d {
                    continue;
                }
                let table = n.forward_path(s, d, SimTime::ZERO).unwrap();
                let direct = n
                    .resolver()
                    .resolve(
                        &n.topology,
                        n.host(s).router,
                        n.host(d).router,
                        RoutingMode::GlobalShortestDelay,
                        false,
                    )
                    .unwrap();
                assert_eq!(*table, direct, "{s:?}→{d:?}");
            }
        }
    }
}
