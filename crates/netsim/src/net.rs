//! The assembled network: topology + routing + load, queried over time.
//!
//! [`Network`] is the simulator's public face. Everything above it (the
//! measurement machinery, the datasets) sees only *observable* behavior —
//! resolve a path, send a probe, run a transfer — mirroring the information
//! barrier real measurement tools face: they cannot see utilization or
//! routing tables, only packets.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use detour_prng::Rng;

use crate::routing::flaps::{FlapConfig, FlapSchedule};
use crate::routing::path::{ResolvedPath, Resolver};
use crate::routing::RoutingMode;
use crate::sim::clock::SimTime;
use crate::topology::generator::{self, Era, TopologyConfig};
use crate::topology::{AsId, Host, HostId, Topology};
use crate::traffic::load::{LoadConfig, LoadModel};

/// Everything needed to build a [`Network`].
#[derive(Debug, Clone)]
pub struct NetworkConfig {
    /// Topology shape.
    pub topology: TopologyConfig,
    /// Load process tuning.
    pub load: LoadConfig,
    /// Route-flap process tuning.
    pub flaps: FlapConfig,
    /// Path-selection mode (the ablation knob).
    pub mode: RoutingMode,
    /// Master seed; every stochastic component derives from it.
    pub seed: u64,
    /// Simulated horizon in seconds (trace duration).
    pub horizon_s: f64,
}

impl NetworkConfig {
    /// Era defaults with the given seed and horizon in days.
    pub fn for_era(era: Era, seed: u64, horizon_days: f64) -> NetworkConfig {
        NetworkConfig {
            topology: TopologyConfig::for_era(era),
            load: LoadConfig::for_era(era),
            flaps: FlapConfig::default(),
            mode: RoutingMode::PolicyHotPotato,
            seed,
            horizon_s: horizon_days * 86_400.0,
        }
    }
}

/// Fixed per-router forwarding/processing delay, one way, milliseconds.
pub const PER_HOP_PROCESSING_MS: f64 = 0.05;

/// Outcome of pushing one packet across a resolved path once.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransitOutcome {
    /// Total one-way delay (propagation + queuing + processing), ms.
    /// Meaningful even when `lost` (the delay accumulated up to the drop is
    /// not reported separately; callers treat lost packets as lost).
    pub delay_ms: f64,
    /// Whether the packet was dropped on some link.
    pub lost: bool,
}

/// A generated network instance.
pub struct Network {
    /// The static topology (public: analyses inspect AS ownership etc.).
    pub topology: Topology,
    resolver: Resolver,
    load: LoadModel,
    flap_cfg: FlapConfig,
    mode: RoutingMode,
    seed: u64,
    horizon_s: f64,
    flap_cache: RefCell<HashMap<(AsId, AsId), Rc<FlapSchedule>>>,
    path_cache: RefCell<HashMap<(u32, u32, bool), Rc<ResolvedPath>>>,
}

impl Network {
    /// Generates a network from `cfg`. Deterministic in `cfg.seed`.
    pub fn generate(cfg: &NetworkConfig) -> Network {
        let mut rng = detour_prng::Xoshiro256pp::seed_from_u64(cfg.seed);
        let topology = generator::generate(&cfg.topology, &mut rng);
        let resolver = Resolver::new(&topology);
        let load = LoadModel::generate(&topology, cfg.load, cfg.seed, cfg.horizon_s);
        Network {
            topology,
            resolver,
            load,
            flap_cfg: cfg.flaps,
            mode: cfg.mode,
            seed: cfg.seed,
            horizon_s: cfg.horizon_s,
            flap_cache: RefCell::new(HashMap::new()),
            path_cache: RefCell::new(HashMap::new()),
        }
    }

    /// All hosts.
    pub fn hosts(&self) -> &[Host] {
        &self.topology.hosts
    }

    /// One host.
    pub fn host(&self, id: HostId) -> &Host {
        self.topology.host(id)
    }

    /// The routing state (read-only; used by analyses and tests).
    pub fn resolver(&self) -> &Resolver {
        &self.resolver
    }

    /// The load model (read-only; used by ablation benches).
    pub fn load(&self) -> &LoadModel {
        &self.load
    }

    /// Routing mode in force.
    pub fn mode(&self) -> RoutingMode {
        self.mode
    }

    /// Simulated horizon, seconds.
    pub fn horizon_s(&self) -> f64 {
        self.horizon_s
    }

    /// The flap schedule for an ordered AS pair (cached).
    fn flaps(&self, src: AsId, dst: AsId) -> Rc<FlapSchedule> {
        self.flap_cache
            .borrow_mut()
            .entry((src, dst))
            .or_insert_with(|| {
                Rc::new(FlapSchedule::generate(
                    &self.flap_cfg,
                    self.seed,
                    src,
                    dst,
                    self.horizon_s,
                ))
            })
            .clone()
    }

    /// Resolves the forward router path from `src` to `dst` hosts at time
    /// `t`, honoring any active flap episode at the source AS.
    ///
    /// Returns `None` when routing cannot produce a path (does not happen
    /// on generated topologies, but callers must treat it as a measurement
    /// failure, not a panic — real traceroutes fail too).
    pub fn forward_path(&self, src: HostId, dst: HostId, t: SimTime) -> Option<Rc<ResolvedPath>> {
        let sr = self.topology.host(src).router;
        let dr = self.topology.host(dst).router;
        let (sa, da) = (self.topology.host(src).asn, self.topology.host(dst).asn);
        let flapped =
            self.mode != RoutingMode::GlobalShortestDelay && self.flaps(sa, da).active_at(t.0);
        let key = (sr.0, dr.0, flapped);
        if let Some(p) = self.path_cache.borrow().get(&key) {
            return Some(p.clone());
        }
        let p = Rc::new(self.resolver.resolve(&self.topology, sr, dr, self.mode, flapped)?);
        self.path_cache.borrow_mut().insert(key, p.clone());
        Some(p)
    }

    /// Sends one packet across `path` at time `t`, sampling queuing delay
    /// and loss on each link.
    pub fn transit(&self, path: &ResolvedPath, t: SimTime, rng: &mut impl Rng) -> TransitOutcome {
        let mut delay = PER_HOP_PROCESSING_MS * path.routers.len() as f64;
        let mut lost = false;
        for &l in &path.links {
            let link = self.topology.link(l);
            let s = self.load.sample(l, t, rng);
            delay += link.prop_delay_ms + s.queue_delay_ms;
            if s.lost {
                lost = true;
            }
        }
        TransitOutcome { delay_ms: delay, lost }
    }

    /// Like [`Network::transit`] but over only the first `prefix_links`
    /// links of `path` (traceroute probing an intermediate hop).
    pub fn transit_prefix(
        &self,
        path: &ResolvedPath,
        prefix_links: usize,
        t: SimTime,
        rng: &mut impl Rng,
    ) -> TransitOutcome {
        let n = prefix_links.min(path.links.len());
        let mut delay = PER_HOP_PROCESSING_MS * (n + 1) as f64;
        let mut lost = false;
        for &l in &path.links[..n] {
            let link = self.topology.link(l);
            let s = self.load.sample(l, t, rng);
            delay += link.prop_delay_ms + s.queue_delay_ms;
            if s.lost {
                lost = true;
            }
        }
        TransitOutcome { delay_ms: delay, lost }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use detour_prng::Xoshiro256pp;

    fn net() -> Network {
        Network::generate(&NetworkConfig::for_era(Era::Y1999, 77, 7.0))
    }

    #[test]
    fn generation_is_deterministic() {
        let a = net();
        let b = net();
        assert_eq!(a.hosts().len(), b.hosts().len());
        let t = SimTime::from_hours(40.0);
        let (h0, h1) = (a.hosts()[0].id, a.hosts()[7].id);
        let pa = a.forward_path(h0, h1, t).unwrap();
        let pb = b.forward_path(h0, h1, t).unwrap();
        assert_eq!(pa.routers, pb.routers);
    }

    #[test]
    fn forward_paths_exist_between_all_host_pairs() {
        let n = net();
        let hosts: Vec<HostId> = n.hosts().iter().map(|h| h.id).collect();
        let t = SimTime::from_hours(10.0);
        for &s in hosts.iter().take(12) {
            for &d in hosts.iter().rev().take(12) {
                if s != d {
                    assert!(n.forward_path(s, d, t).is_some(), "{s:?}→{d:?}");
                }
            }
        }
    }

    #[test]
    fn transit_delay_exceeds_propagation() {
        let n = net();
        let t = SimTime::from_hours(34.0);
        let p = n.forward_path(n.hosts()[0].id, n.hosts()[9].id, t).unwrap();
        let prop = p.prop_delay_ms(&n.topology);
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        for _ in 0..50 {
            let out = n.transit(&p, t, &mut rng);
            assert!(out.delay_ms > prop, "queuing must add delay");
        }
    }

    #[test]
    fn busy_hours_are_slower_on_average() {
        let n = net();
        let p = n.forward_path(n.hosts()[2].id, n.hosts()[11].id, SimTime::ZERO).unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(8);
        let avg = |t: SimTime, rng: &mut Xoshiro256pp| -> f64 {
            (0..300).map(|_| n.transit(&p, t, rng).delay_ms).sum::<f64>() / 300.0
        };
        // Tuesday 11:00 PST vs Tuesday 03:30 PST (most hosts are NA).
        let busy = avg(SimTime::from_hours(24.0 + 19.0), &mut rng);
        let quiet = avg(SimTime::from_hours(24.0 + 11.5), &mut rng);
        assert!(busy > quiet, "busy {busy} vs quiet {quiet}");
    }

    #[test]
    fn losses_happen_but_are_not_dominant() {
        let n = net();
        let t = SimTime::from_hours(30.0);
        let hosts: Vec<HostId> = n.hosts().iter().map(|h| h.id).collect();
        let mut rng = Xoshiro256pp::seed_from_u64(12);
        let mut lost = 0;
        let mut total = 0;
        for &s in hosts.iter().take(10) {
            for &d in hosts.iter().rev().take(10) {
                if s == d {
                    continue;
                }
                let p = n.forward_path(s, d, t).unwrap();
                for _ in 0..20 {
                    total += 1;
                    if n.transit(&p, t, &mut rng).lost {
                        lost += 1;
                    }
                }
            }
        }
        let rate = lost as f64 / total as f64;
        assert!(rate > 0.001, "some loss expected, got {rate}");
        assert!(rate < 0.25, "loss should not dominate, got {rate}");
    }

    #[test]
    fn prefix_transit_is_cheaper_than_full() {
        let n = net();
        let t = SimTime::from_hours(16.0);
        let p = n.forward_path(n.hosts()[1].id, n.hosts()[13].id, t).unwrap();
        assert!(p.links.len() >= 2);
        let mut rng = Xoshiro256pp::seed_from_u64(21);
        let prefix_avg: f64 =
            (0..100).map(|_| n.transit_prefix(&p, 1, t, &mut rng).delay_ms).sum::<f64>() / 100.0;
        let full_avg: f64 =
            (0..100).map(|_| n.transit(&p, t, &mut rng).delay_ms).sum::<f64>() / 100.0;
        assert!(prefix_avg < full_avg);
    }

    #[test]
    fn route_flaps_change_paths_over_time() {
        // Crank the flap process (an episode every ~2 h, ~30 min long) so
        // the 2-day horizon reliably contains flapped measurement times for
        // some pair, then observe forward_path switching routes.
        let mut cfg = NetworkConfig::for_era(Era::Y1999, 515, 2.0);
        cfg.flaps = crate::routing::flaps::FlapConfig {
            mean_interval_s: 2.0 * 3600.0,
            mean_duration_s: 30.0 * 60.0,
        };
        let n = Network::generate(&cfg);
        let hosts: Vec<HostId> = n.hosts().iter().map(|h| h.id).collect();
        let mut saw_change = false;
        'outer: for &s in hosts.iter().take(12) {
            for &d in hosts.iter().rev().take(12) {
                if s == d {
                    continue;
                }
                let baseline = n.forward_path(s, d, SimTime::ZERO).unwrap();
                for hour in 1..48 {
                    let p = n.forward_path(s, d, SimTime::from_hours(hour as f64)).unwrap();
                    if p.routers != baseline.routers {
                        saw_change = true;
                        break 'outer;
                    }
                }
            }
        }
        assert!(saw_change, "no pair ever flapped in 48 hours at high flap rate");
    }

    #[test]
    fn global_mode_ignores_flaps() {
        let mut cfg = NetworkConfig::for_era(Era::Y1999, 515, 2.0);
        cfg.flaps = crate::routing::flaps::FlapConfig {
            mean_interval_s: 3600.0,
            mean_duration_s: 1800.0,
        };
        cfg.mode = RoutingMode::GlobalShortestDelay;
        let n = Network::generate(&cfg);
        let (s, d) = (n.hosts()[0].id, n.hosts()[9].id);
        let baseline = n.forward_path(s, d, SimTime::ZERO).unwrap();
        for hour in 1..48 {
            let p = n.forward_path(s, d, SimTime::from_hours(hour as f64)).unwrap();
            assert_eq!(p.routers, baseline.routers, "ideal routing must be static");
        }
    }

    #[test]
    fn path_cache_is_transparent() {
        let n = net();
        let t = SimTime::from_hours(5.0);
        let (s, d) = (n.hosts()[0].id, n.hosts()[4].id);
        let a = n.forward_path(s, d, t).unwrap();
        let b = n.forward_path(s, d, t).unwrap();
        assert!(Rc::ptr_eq(&a, &b), "second resolution should hit the cache");
    }
}
