//! Router-level Internet topology with an AS-level overlay.
//!
//! The paper (§3) explains why Internet paths are not performance-optimal:
//! a two-level routing hierarchy (IGP inside each autonomous system, BGP
//! between them), per-AS policies, and economically motivated behaviors like
//! early-exit ("hot-potato") routing. The topology model mirrors that
//! structure:
//!
//! * a small set of **tier-1** ASes (national backbones, mutually peered),
//! * **regional** providers buying transit from tier-1s and peering with
//!   some of each other,
//! * **stub** ASes (campuses, small ISPs — where measurement hosts live)
//!   buying transit from regionals or tier-1s, occasionally multi-homed,
//! * each AS realized as one router per point-of-presence (POP) city with an
//!   intra-AS backbone, and inter-AS links at shared cities — either private
//!   interconnects or **public exchange points** (the notoriously congested
//!   MAE-East-style IXPs of the era).

pub mod generator;
pub mod validate;

use crate::geo::CityId;

/// Identifier of an autonomous system (index into [`Topology::ases`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AsId(pub u16);

/// Identifier of a router (index into [`Topology::routers`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RouterId(pub u32);

/// Identifier of a unidirectional link (index into [`Topology::links`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub u32);

/// Identifier of an end host (index into [`Topology::hosts`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HostId(pub u32);

/// Where an AS sits in the provider hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AsTier {
    /// National/international backbone; peers with all other tier-1s.
    Tier1,
    /// Regional provider; buys transit from tier-1s.
    Regional,
    /// Edge network (campus, small ISP); hosts live here.
    Stub,
}

/// Business relationship between two ASes, from the perspective of the pair
/// `(a, b)` as stored: `a` is the provider and `b` the customer, or they are
/// mutual peers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Relationship {
    /// `a` sells transit to `b`.
    ProviderCustomer,
    /// Settlement-free peering.
    Peer,
}

/// An inter-AS business edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AsEdge {
    /// First AS (the provider when `rel` is [`Relationship::ProviderCustomer`]).
    pub a: AsId,
    /// Second AS (the customer when `rel` is [`Relationship::ProviderCustomer`]).
    pub b: AsId,
    /// Relationship type.
    pub rel: Relationship,
}

/// An autonomous system.
#[derive(Debug, Clone)]
pub struct AutonomousSystem {
    /// This AS's id.
    pub id: AsId,
    /// Hierarchy tier.
    pub tier: AsTier,
    /// Cities where the AS operates a POP (one router each).
    pub pops: Vec<CityId>,
    /// Routers realizing the POPs, parallel to `pops`.
    pub routers: Vec<RouterId>,
    /// Whether this AS configures IGP metrics manually to approximate delay
    /// (large ASes) or uses raw hop count (small ASes) — paper §3.
    pub igp_uses_delay_metrics: bool,
}

/// A router (one POP of one AS).
#[derive(Debug, Clone, Copy)]
pub struct Router {
    /// This router's id.
    pub id: RouterId,
    /// Owning AS.
    pub asn: AsId,
    /// City the POP is located in.
    pub city: CityId,
}

/// Whether a link crosses an AS boundary, and how.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkKind {
    /// Intra-AS backbone link.
    Internal,
    /// Private interconnect between two ASes.
    PrivateInterconnect,
    /// Port on a shared public exchange point (congested in this era).
    PublicExchange,
}

/// A unidirectional link between two routers.
///
/// Links come in pairs (forward/reverse) so the load model can give the two
/// directions independent utilization — Internet paths and their loads are
/// famously asymmetric \[Pax96\].
#[derive(Debug, Clone, Copy)]
pub struct Link {
    /// This link's id.
    pub id: LinkId,
    /// Transmitting router.
    pub from: RouterId,
    /// Receiving router.
    pub to: RouterId,
    /// One-way propagation delay, milliseconds.
    pub prop_delay_ms: f64,
    /// Nominal capacity in Mbit/s (era-dependent: T1/T3 vs OC-3/OC-12).
    pub capacity_mbps: f64,
    /// Link kind.
    pub kind: LinkKind,
}

/// An end host attached to a router of a stub AS.
#[derive(Debug, Clone)]
pub struct Host {
    /// This host's id.
    pub id: HostId,
    /// Attachment router.
    pub router: RouterId,
    /// Owning (stub) AS.
    pub asn: AsId,
    /// City of the attachment router.
    pub city: CityId,
    /// Synthetic DNS-ish name, e.g. `"host3.stub17.example"`.
    pub name: String,
    /// Whether the host rate-limits its ICMP responses (paper §4.2:
    /// rate-limiting hosts had to be detected empirically and filtered).
    pub icmp_rate_limited: bool,
}

/// The complete static topology.
#[derive(Debug, Clone)]
pub struct Topology {
    /// All ASes, indexed by `AsId`.
    pub ases: Vec<AutonomousSystem>,
    /// Inter-AS business relationships.
    pub as_edges: Vec<AsEdge>,
    /// All routers, indexed by `RouterId`.
    pub routers: Vec<Router>,
    /// All (unidirectional) links, indexed by `LinkId`.
    pub links: Vec<Link>,
    /// All hosts, indexed by `HostId`.
    pub hosts: Vec<Host>,
    /// Outgoing link ids per router, indexed by `RouterId`.
    pub adjacency: Vec<Vec<LinkId>>,
}

impl Topology {
    /// The AS record for `id`.
    pub fn asys(&self, id: AsId) -> &AutonomousSystem {
        &self.ases[id.0 as usize]
    }

    /// The router record for `id`.
    pub fn router(&self, id: RouterId) -> &Router {
        &self.routers[id.0 as usize]
    }

    /// The link record for `id`.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.0 as usize]
    }

    /// The host record for `id`.
    pub fn host(&self, id: HostId) -> &Host {
        &self.hosts[id.0 as usize]
    }

    /// Outgoing links of `router`.
    pub fn links_from(&self, router: RouterId) -> impl Iterator<Item = &Link> + '_ {
        self.adjacency[router.0 as usize]
            .iter()
            .map(move |&l| self.link(l))
    }

    /// The outgoing link from `a` to `b`, if one exists.
    pub fn link_between(&self, a: RouterId, b: RouterId) -> Option<&Link> {
        self.links_from(a).find(|l| l.to == b)
    }

    /// All provider ASes of `customer`.
    pub fn providers_of(&self, customer: AsId) -> impl Iterator<Item = AsId> + '_ {
        self.as_edges.iter().filter_map(move |e| {
            (e.rel == Relationship::ProviderCustomer && e.b == customer).then_some(e.a)
        })
    }

    /// All customer ASes of `provider`.
    pub fn customers_of(&self, provider: AsId) -> impl Iterator<Item = AsId> + '_ {
        self.as_edges.iter().filter_map(move |e| {
            (e.rel == Relationship::ProviderCustomer && e.a == provider).then_some(e.b)
        })
    }

    /// All peers of `asn`.
    pub fn peers_of(&self, asn: AsId) -> impl Iterator<Item = AsId> + '_ {
        self.as_edges.iter().filter_map(move |e| match e.rel {
            Relationship::Peer if e.a == asn => Some(e.b),
            Relationship::Peer if e.b == asn => Some(e.a),
            _ => None,
        })
    }

    /// True if an inter-AS link connects routers of `a` and `b` somewhere.
    pub fn ases_physically_connected(&self, a: AsId, b: AsId) -> bool {
        self.links.iter().any(|l| {
            l.kind != LinkKind::Internal
                && self.router(l.from).asn == a
                && self.router(l.to).asn == b
        })
    }

    /// Number of ASes.
    pub fn as_count(&self) -> usize {
        self.ases.len()
    }
}
