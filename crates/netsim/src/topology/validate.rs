//! Topology invariant checking.
//!
//! The generator promises structural properties that routing correctness
//! depends on (DESIGN.md §6). [`validate`] checks them all on any topology
//! — generated or hand-built — and returns every violation instead of
//! panicking on the first, so a failing fuzz case reads like a diagnosis,
//! not a stack trace.

use crate::topology::{AsTier, LinkKind, Relationship, Topology};

/// One violated invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which invariant failed.
    pub rule: &'static str,
    /// Human-readable detail.
    pub detail: String,
}

/// Checks every structural invariant; returns all violations (empty =
/// valid).
pub fn validate(topo: &Topology) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut violate = |rule: &'static str, detail: String| {
        out.push(Violation { rule, detail });
    };

    // --- Id consistency ---
    for (i, a) in topo.ases.iter().enumerate() {
        if a.id.0 as usize != i {
            violate("as-id-dense", format!("AS at index {i} has id {:?}", a.id));
        }
        if a.pops.len() != a.routers.len() {
            violate(
                "as-pops-routers",
                format!(
                    "{:?}: {} pops vs {} routers",
                    a.id,
                    a.pops.len(),
                    a.routers.len()
                ),
            );
        }
        for &r in &a.routers {
            if topo.router(r).asn != a.id {
                violate(
                    "router-ownership",
                    format!(
                        "{r:?} listed by {:?} but owned by {:?}",
                        a.id,
                        topo.router(r).asn
                    ),
                );
            }
        }
    }
    for (i, r) in topo.routers.iter().enumerate() {
        if r.id.0 as usize != i {
            violate(
                "router-id-dense",
                format!("router at index {i} has id {:?}", r.id),
            );
        }
    }
    for (i, l) in topo.links.iter().enumerate() {
        if l.id.0 as usize != i {
            violate(
                "link-id-dense",
                format!("link at index {i} has id {:?}", l.id),
            );
        }
        if l.prop_delay_ms <= 0.0 || !l.prop_delay_ms.is_finite() {
            violate(
                "link-delay-positive",
                format!("{:?}: {} ms", l.id, l.prop_delay_ms),
            );
        }
        if l.capacity_mbps <= 0.0 {
            violate(
                "link-capacity-positive",
                format!("{:?}: {} Mbps", l.id, l.capacity_mbps),
            );
        }
    }

    // --- Links come in directional pairs, kinds match endpoints ---
    for l in &topo.links {
        if topo.link_between(l.to, l.from).is_none() {
            violate(
                "link-pairing",
                format!("{:?} {:?}→{:?} has no reverse", l.id, l.from, l.to),
            );
        }
        let same_as = topo.router(l.from).asn == topo.router(l.to).asn;
        match l.kind {
            LinkKind::Internal if !same_as => {
                violate("internal-link-intra-as", format!("{:?} crosses ASes", l.id))
            }
            LinkKind::PrivateInterconnect | LinkKind::PublicExchange if same_as => violate(
                "border-link-inter-as",
                format!("{:?} stays inside one AS", l.id),
            ),
            _ => {}
        }
    }

    // --- Adjacency agrees with links ---
    for (r, adj) in topo.adjacency.iter().enumerate() {
        for &lid in adj {
            if topo.link(lid).from.0 as usize != r {
                violate(
                    "adjacency-consistent",
                    format!(
                        "router {r} lists {lid:?} which starts at {:?}",
                        topo.link(lid).from
                    ),
                );
            }
        }
    }

    // --- Relationship sanity ---
    for e in &topo.as_edges {
        if e.a == e.b {
            violate("no-self-relationship", format!("{:?}", e.a));
        }
        if e.rel == Relationship::ProviderCustomer && topo.asys(e.a).tier == AsTier::Stub {
            violate(
                "stubs-sell-no-transit",
                format!("{:?} provides {:?}", e.a, e.b),
            );
        }
        if !topo.ases_physically_connected(e.a, e.b) && !topo.ases_physically_connected(e.b, e.a) {
            violate("relationship-has-link", format!("{:?}-{:?}", e.a, e.b));
        }
    }

    // --- Every non-tier1 AS has a provider; hosts live on stubs ---
    for a in &topo.ases {
        if a.tier != AsTier::Tier1 && topo.providers_of(a.id).count() == 0 {
            violate(
                "transit-for-everyone",
                format!("{:?} ({:?}) has no provider", a.id, a.tier),
            );
        }
    }
    for h in &topo.hosts {
        if topo.asys(h.asn).tier != AsTier::Stub {
            violate(
                "hosts-on-stubs",
                format!("{} lives on {:?}", h.name, topo.asys(h.asn).tier),
            );
        }
        if topo.router(h.router).asn != h.asn {
            violate("host-router-as", h.name.clone());
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::generator::{generate, Era, TopologyConfig};
    use detour_prng::Xoshiro256pp;

    #[test]
    fn generated_topologies_are_valid_across_seeds_and_eras() {
        for era in [Era::Y1995, Era::Y1999] {
            for seed in 0..12u64 {
                let topo = generate(
                    &TopologyConfig::for_era(era),
                    &mut Xoshiro256pp::seed_from_u64(seed),
                );
                let violations = validate(&topo);
                assert!(
                    violations.is_empty(),
                    "{era:?} seed {seed}: {violations:#?}"
                );
            }
        }
    }

    #[test]
    fn corruption_is_detected() {
        let mut topo = generate(
            &TopologyConfig::for_era(Era::Y1999),
            &mut Xoshiro256pp::seed_from_u64(1),
        );
        // Break a link's delay.
        topo.links[0].prop_delay_ms = -1.0;
        let violations = validate(&topo);
        assert!(violations.iter().any(|v| v.rule == "link-delay-positive"));
    }

    #[test]
    fn broken_kind_is_detected() {
        let mut topo = generate(
            &TopologyConfig::for_era(Era::Y1999),
            &mut Xoshiro256pp::seed_from_u64(2),
        );
        // Flip the first internal link to a border kind without moving it.
        let internal = topo
            .links
            .iter()
            .position(|l| l.kind == LinkKind::Internal)
            .expect("internal links exist");
        topo.links[internal].kind = LinkKind::PrivateInterconnect;
        let violations = validate(&topo);
        assert!(violations.iter().any(|v| v.rule == "border-link-inter-as"));
    }
}
