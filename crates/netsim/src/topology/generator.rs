//! Synthetic topology generation.
//!
//! Generates the hierarchical AS topology described in [`super`]: tier-1
//! backbones, regional providers, and stub edge networks, embedded in the
//! city database of [`crate::geo`]. Two parameter *eras* reproduce the
//! infrastructures the paper's datasets saw: 1995 (D2/N2 — NSFNET-
//! aftermath, T3 backbones, few providers, congested public exchanges) and
//! 1998-99 (UW datasets — more providers, OC-3/OC-12 backbones, more
//! private interconnects).
//!
//! Generation is fully deterministic given the RNG.

use detour_prng::Rng;
use detour_prng::SliceRandom;

use crate::geo::{self, CityId, Region, CITIES};
use crate::topology::{
    AsEdge, AsId, AsTier, AutonomousSystem, Host, HostId, Link, LinkId, LinkKind, Relationship,
    Router, RouterId, Topology,
};

/// Which generation of Internet infrastructure to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Era {
    /// Mid-1990s: few providers, T1/T3 links, heavily loaded public IXPs.
    Y1995,
    /// Late 1990s: more providers and private peering, OC-3/OC-12 cores.
    Y1999,
}

/// Tuning knobs for topology generation.
#[derive(Debug, Clone)]
pub struct TopologyConfig {
    /// Infrastructure era.
    pub era: Era,
    /// Number of tier-1 backbone ASes.
    pub n_tier1: usize,
    /// Number of regional provider ASes.
    pub n_regional: usize,
    /// Number of stub (edge) ASes — hosts live here.
    pub n_stub: usize,
    /// Probability that a pair of regionals in the same broad area peer.
    pub regional_peering_prob: f64,
    /// Probability that a stub is multi-homed to two providers.
    pub multihome_prob: f64,
    /// Fraction of hosts that ICMP-rate-limit their responses.
    pub rate_limited_fraction: f64,
    /// Hosts attached per stub AS.
    pub hosts_per_stub: usize,
    /// Restrict stub ASes (and hence hosts) to North America.
    pub stubs_na_only: bool,
}

impl TopologyConfig {
    /// Defaults for the given era, sized like the paper's measurement-era
    /// Internet (scaled down: we only need enough diversity to embed a few
    /// dozen measurement hosts).
    pub fn for_era(era: Era) -> TopologyConfig {
        match era {
            Era::Y1995 => TopologyConfig {
                era,
                n_tier1: 4,
                n_regional: 9,
                n_stub: 50,
                regional_peering_prob: 0.15,
                multihome_prob: 0.20,
                rate_limited_fraction: 0.25,
                hosts_per_stub: 1,
                stubs_na_only: false,
            },
            Era::Y1999 => TopologyConfig {
                era,
                n_tier1: 6,
                n_regional: 14,
                n_stub: 85,
                regional_peering_prob: 0.30,
                multihome_prob: 0.28,
                rate_limited_fraction: 0.25,
                hosts_per_stub: 1,
                stubs_na_only: false,
            },
        }
    }
}

/// Cities that host a public exchange point in this model (the MAE-East /
/// MAE-West / AADS generation — chronically congested in the mid-90s).
const IXP_CITY_NAMES: &[&str] = &[
    "Washington DC",
    "Palo Alto",
    "Chicago",
    "New York",
    "Dallas",
    "London",
    "Tokyo",
];

fn ixp_cities() -> Vec<CityId> {
    CITIES
        .iter()
        .enumerate()
        .filter(|(_, c)| IXP_CITY_NAMES.contains(&c.name))
        .map(|(i, _)| i)
        .collect()
}

/// Incremental builder around [`Topology`].
struct Builder {
    ases: Vec<AutonomousSystem>,
    as_edges: Vec<AsEdge>,
    routers: Vec<Router>,
    links: Vec<Link>,
    hosts: Vec<Host>,
    adjacency: Vec<Vec<LinkId>>,
}

impl Builder {
    fn new() -> Builder {
        Builder {
            ases: Vec::new(),
            as_edges: Vec::new(),
            routers: Vec::new(),
            links: Vec::new(),
            hosts: Vec::new(),
            adjacency: Vec::new(),
        }
    }

    fn add_as(&mut self, tier: AsTier, pops: Vec<CityId>, delay_metrics: bool) -> AsId {
        let id = AsId(self.ases.len() as u16);
        let routers: Vec<RouterId> = pops
            .iter()
            .map(|&city| {
                let rid = RouterId(self.routers.len() as u32);
                self.routers.push(Router {
                    id: rid,
                    asn: id,
                    city,
                });
                self.adjacency.push(Vec::new());
                rid
            })
            .collect();
        self.ases.push(AutonomousSystem {
            id,
            tier,
            pops,
            routers,
            igp_uses_delay_metrics: delay_metrics,
        });
        id
    }

    /// Adds a bidirectional link (two unidirectional records).
    fn add_link_pair(&mut self, a: RouterId, b: RouterId, capacity_mbps: f64, kind: LinkKind) {
        let delay = geo::fiber_delay_ms(
            CITIES[self.routers[a.0 as usize].city]
                .loc
                .distance_km(&CITIES[self.routers[b.0 as usize].city].loc),
        );
        for (from, to) in [(a, b), (b, a)] {
            let id = LinkId(self.links.len() as u32);
            self.links.push(Link {
                id,
                from,
                to,
                prop_delay_ms: delay,
                capacity_mbps,
                kind,
            });
            self.adjacency[from.0 as usize].push(id);
        }
    }

    fn finish(self) -> Topology {
        Topology {
            ases: self.ases,
            as_edges: self.as_edges,
            routers: self.routers,
            links: self.links,
            hosts: self.hosts,
            adjacency: self.adjacency,
        }
    }
}

/// Distance between the closest POP pair of two ASes, and that pair.
fn closest_pops(topo: &Builder, a: AsId, b: AsId) -> (RouterId, RouterId, f64) {
    let mut best = (RouterId(0), RouterId(0), f64::INFINITY);
    for &ra in &topo.ases[a.0 as usize].routers {
        for &rb in &topo.ases[b.0 as usize].routers {
            let d = CITIES[topo.routers[ra.0 as usize].city]
                .loc
                .distance_km(&CITIES[topo.routers[rb.0 as usize].city].loc);
            if d < best.2 {
                best = (ra, rb, d);
            }
        }
    }
    best
}

/// Router pairs of two ASes located in the *same* city (candidate
/// interconnection points), sorted by city id for determinism.
fn colocated_pops(topo: &Builder, a: AsId, b: AsId) -> Vec<(RouterId, RouterId)> {
    let mut out = Vec::new();
    for &ra in &topo.ases[a.0 as usize].routers {
        for &rb in &topo.ases[b.0 as usize].routers {
            if topo.routers[ra.0 as usize].city == topo.routers[rb.0 as usize].city {
                out.push((ra, rb));
            }
        }
    }
    out.sort_by_key(|&(ra, _)| topo.routers[ra.0 as usize].city);
    out
}

/// Connects the POPs of one AS into a backbone: a minimum-spanning tree on
/// great-circle distance plus one ring-closing chord for redundancy.
fn build_backbone(b: &mut Builder, asn: AsId, capacity: f64, rng: &mut impl Rng) {
    let routers = b.ases[asn.0 as usize].routers.clone();
    if routers.len() <= 1 {
        return;
    }
    // Prim's MST over POP distances.
    let n = routers.len();
    let dist = |b: &Builder, i: usize, j: usize| {
        CITIES[b.routers[routers[i].0 as usize].city]
            .loc
            .distance_km(&CITIES[b.routers[routers[j].0 as usize].city].loc)
    };
    let mut in_tree = vec![false; n];
    in_tree[0] = true;
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for _ in 1..n {
        let mut best = (usize::MAX, usize::MAX, f64::INFINITY);
        for i in 0..n {
            if !in_tree[i] {
                continue;
            }
            for (j, &in_j) in in_tree.iter().enumerate() {
                if in_j {
                    continue;
                }
                let d = dist(b, i, j);
                if d < best.2 {
                    best = (i, j, d);
                }
            }
        }
        in_tree[best.1] = true;
        edges.push((best.0, best.1));
    }
    // One extra chord between two random distinct leaves for redundancy
    // (keeps IGP paths from being forced through a single hub).
    if n >= 4 {
        let i = rng.gen_range(0..n);
        let mut j = rng.gen_range(0..n);
        if j == i {
            j = (j + 1) % n;
        }
        if !edges.contains(&(i, j)) && !edges.contains(&(j, i)) {
            edges.push((i, j));
        }
    }
    for (i, j) in edges {
        let cap = capacity * rng.gen_range(0.8..1.2);
        b.add_link_pair(routers[i], routers[j], cap, LinkKind::Internal);
    }
}

/// Generates a complete topology from `cfg` using `rng`.
///
/// Structural guarantees (checked by tests and relied on by routing):
/// * tier-1 ASes form a full peering mesh;
/// * every regional has at least one tier-1 provider;
/// * every stub has at least one provider;
/// * every AS relationship is realized by at least one physical link pair.
pub fn generate(cfg: &TopologyConfig, rng: &mut impl Rng) -> Topology {
    let mut b = Builder::new();
    let na = geo::north_american_cities();
    let world = geo::all_cities();
    let ixps = ixp_cities();

    let (core_cap, regional_cap, stub_cap) = match cfg.era {
        Era::Y1995 => (45.0, 20.0, 4.0), // T3 cores, sub-T3 regionals, ~T1+ stubs
        Era::Y1999 => (400.0, 120.0, 20.0), // OC-12-ish cores, OC-3 regionals
    };

    // --- Tier-1 backbones: many POPs, NA-centric with world reach. ---
    let mut tier1s = Vec::new();
    for t in 0..cfg.n_tier1 {
        let n_pops = rng.gen_range(8..=12.min(na.len()));
        let mut pops: Vec<CityId> = na.clone();
        pops.shuffle(rng);
        pops.truncate(n_pops);
        // Every other tier-1 also lands POPs abroad so world datasets have
        // transit; id parity keeps it deterministic.
        if t % 2 == 0 {
            for &c in world
                .iter()
                .filter(|&&c| !CITIES[c].region.is_north_america())
            {
                if rng.gen_bool(0.35) {
                    pops.push(c);
                }
            }
        }
        pops.sort_unstable();
        pops.dedup();
        let asn = b.add_as(AsTier::Tier1, pops, true);
        build_backbone(&mut b, asn, core_cap, rng);
        tier1s.push(asn);
    }

    // --- Regional providers: a handful of POPs in one broad area. ---
    let mut regionals = Vec::new();
    let regions = [
        Region::NaWest,
        Region::NaCentral,
        Region::NaEast,
        Region::Europe,
        Region::Asia,
    ];
    for r in 0..cfg.n_regional {
        // Cycle regions so each area gets coverage; NA gets the lion's share.
        let region = regions[r % if cfg.stubs_na_only { 3 } else { regions.len() }];
        let mut pool: Vec<CityId> = (0..CITIES.len())
            .filter(|&c| CITIES[c].region == region)
            .collect();
        // Regionals also reach into one adjacent NA region for realism.
        if region == Region::NaCentral {
            pool.extend((0..CITIES.len()).filter(|&c| CITIES[c].region == Region::NaEast));
        }
        pool.shuffle(rng);
        let n_pops = rng.gen_range(3..=5usize).min(pool.len());
        pool.truncate(n_pops.max(1));
        let asn = b.add_as(AsTier::Regional, pool, rng.gen_bool(0.5));
        build_backbone(&mut b, asn, regional_cap, rng);
        regionals.push(asn);
    }

    // --- Stub ASes: one POP, hosts attached. ---
    let mut stubs = Vec::new();
    let abroad: Vec<CityId> = world
        .iter()
        .copied()
        .filter(|&c| !CITIES[c].region.is_north_america())
        .collect();
    for _ in 0..cfg.n_stub {
        // Stubs cluster in NA (as the paper's host pools did) even in the
        // world configuration: ~2/3 NA, 1/3 elsewhere.
        let city = if cfg.stubs_na_only || rng.gen_bool(0.67) {
            na[rng.gen_range(0..na.len())]
        } else {
            abroad[rng.gen_range(0..abroad.len())]
        };
        let asn = b.add_as(AsTier::Stub, vec![city], false);
        stubs.push(asn);
    }

    // --- AS relationships. ---
    // Tier-1 full mesh of peering, interconnected at 2-3 points each:
    // prefer colocated POPs; IXP cities get PublicExchange ports.
    for i in 0..tier1s.len() {
        for j in (i + 1)..tier1s.len() {
            let (a, bb) = (tier1s[i], tier1s[j]);
            b.as_edges.push(AsEdge {
                a,
                b: bb,
                rel: Relationship::Peer,
            });
            let colo = colocated_pops(&b, a, bb);
            let n_points = rng.gen_range(2..=3usize).min(colo.len().max(1));
            if colo.is_empty() {
                let (ra, rb, _) = closest_pops(&b, a, bb);
                b.add_link_pair(ra, rb, core_cap, LinkKind::PrivateInterconnect);
            } else {
                // Deterministically spread the chosen interconnects.
                let step = (colo.len() / n_points).max(1);
                for k in 0..n_points {
                    let (ra, rb) = colo[(k * step) % colo.len()];
                    let city = b.routers[ra.0 as usize].city;
                    let kind = if ixps.contains(&city) {
                        LinkKind::PublicExchange
                    } else {
                        LinkKind::PrivateInterconnect
                    };
                    b.add_link_pair(ra, rb, core_cap, kind);
                }
            }
        }
    }

    // Regionals buy transit from 1-2 tier-1s, and peer with some other
    // regionals. Provider choice is mostly-but-not-always geographic:
    // transit contracts follow price and history as much as fiber miles
    // (the economic non-optimality of paper §3), so ~30 % of the time a
    // regional signs with a random tier-1 rather than the nearest.
    for &r in &regionals {
        let mut providers: Vec<AsId> = tier1s.clone();
        providers.sort_by(|&p, &q| {
            let dp = closest_pops(&b, p, r).2;
            let dq = closest_pops(&b, q, r).2;
            dp.partial_cmp(&dq).unwrap()
        });
        if rng.gen_bool(0.2) {
            providers.shuffle(rng);
        }
        let n_prov = if rng.gen_bool(0.5) { 2 } else { 1 }.min(providers.len());
        for &p in providers.iter().take(n_prov) {
            b.as_edges.push(AsEdge {
                a: p,
                b: r,
                rel: Relationship::ProviderCustomer,
            });
            let colo = colocated_pops(&b, p, r);
            let (ra, rb) = if colo.is_empty() {
                let (ra, rb, _) = closest_pops(&b, p, r);
                (ra, rb)
            } else {
                colo[0]
            };
            let city = b.routers[ra.0 as usize].city;
            let kind = if ixps.contains(&city) && rng.gen_bool(era_ixp_prob(cfg.era)) {
                LinkKind::PublicExchange
            } else {
                LinkKind::PrivateInterconnect
            };
            b.add_link_pair(ra, rb, regional_cap, kind);
        }
    }
    for i in 0..regionals.len() {
        for j in (i + 1)..regionals.len() {
            if rng.gen_bool(cfg.regional_peering_prob) {
                let (a, bb) = (regionals[i], regionals[j]);
                b.as_edges.push(AsEdge {
                    a,
                    b: bb,
                    rel: Relationship::Peer,
                });
                let (ra, rb, _) = closest_pops(&b, a, bb);
                let city = b.routers[ra.0 as usize].city;
                let kind = if ixps.contains(&city) {
                    LinkKind::PublicExchange
                } else {
                    LinkKind::PrivateInterconnect
                };
                b.add_link_pair(ra, rb, regional_cap, kind);
            }
        }
    }

    // Stubs buy transit from nearby regionals (or a tier-1), with optional
    // multi-homing. As with regionals, ~20 % of contracts ignore geography
    // — a campus buying from a national ISP with no local POP is exactly
    // the kind of path-stretch the paper's alternate paths route around.
    for &s in &stubs {
        let mut candidates: Vec<AsId> = regionals.iter().chain(tier1s.iter()).copied().collect();
        candidates.sort_by(|&p, &q| {
            let mut dp = closest_pops(&b, p, s).2;
            let mut dq = closest_pops(&b, q, s).2;
            // Bias toward regionals: tier-1 transit costs more.
            if b.ases[p.0 as usize].tier == AsTier::Tier1 {
                dp *= 2.0;
            }
            if b.ases[q.0 as usize].tier == AsTier::Tier1 {
                dq *= 2.0;
            }
            dp.partial_cmp(&dq).unwrap()
        });
        if rng.gen_bool(0.2) {
            let k = candidates.len().min(6);
            candidates[..k].shuffle(rng);
        }
        let n_prov = if rng.gen_bool(cfg.multihome_prob) {
            2
        } else {
            1
        };
        for &p in candidates.iter().take(n_prov.min(candidates.len())) {
            b.as_edges.push(AsEdge {
                a: p,
                b: s,
                rel: Relationship::ProviderCustomer,
            });
            let (ra, rb, _) = closest_pops(&b, p, s);
            b.add_link_pair(
                ra,
                rb,
                stub_cap * rng.gen_range(0.7..1.5),
                LinkKind::PrivateInterconnect,
            );
        }
    }

    // --- Hosts on stub ASes. ---
    for &s in &stubs {
        let asys = b.ases[s.0 as usize].clone();
        for h in 0..cfg.hosts_per_stub {
            let id = HostId(b.hosts.len() as u32);
            let router = asys.routers[h % asys.routers.len()];
            let city = b.routers[router.0 as usize].city;
            b.hosts.push(Host {
                id,
                router,
                asn: s,
                city,
                name: format!("host{h}.as{}.{}", s.0, CITIES[city].name.replace(' ', "-")),
                icmp_rate_limited: rng.gen_bool(cfg.rate_limited_fraction),
            });
        }
    }

    b.finish()
}

/// Probability that a provider-customer interconnect in an IXP city rides
/// the shared public fabric (high in 1995, lower by 1999 as private peering
/// spread).
fn era_ixp_prob(era: Era) -> f64 {
    match era {
        Era::Y1995 => 0.8,
        Era::Y1999 => 0.4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use detour_prng::Xoshiro256pp;

    fn topo(era: Era, seed: u64) -> Topology {
        let cfg = TopologyConfig::for_era(era);
        generate(&cfg, &mut Xoshiro256pp::seed_from_u64(seed))
    }

    #[test]
    fn generation_is_deterministic() {
        let a = topo(Era::Y1999, 7);
        let b = topo(Era::Y1999, 7);
        assert_eq!(a.ases.len(), b.ases.len());
        assert_eq!(a.links.len(), b.links.len());
        assert_eq!(a.hosts.len(), b.hosts.len());
        for (la, lb) in a.links.iter().zip(&b.links) {
            assert_eq!(la.from, lb.from);
            assert_eq!(la.to, lb.to);
            assert_eq!(la.prop_delay_ms, lb.prop_delay_ms);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = topo(Era::Y1999, 1);
        let b = topo(Era::Y1999, 2);
        let same_links = a.links.len() == b.links.len()
            && a.links
                .iter()
                .zip(&b.links)
                .all(|(x, y)| x.from == y.from && x.to == y.to);
        assert!(!same_links, "seeds should produce different link sets");
    }

    #[test]
    fn every_stub_has_a_provider() {
        let t = topo(Era::Y1999, 3);
        for asys in t.ases.iter().filter(|a| a.tier == AsTier::Stub) {
            assert!(
                t.providers_of(asys.id).count() >= 1,
                "stub {:?} has no provider",
                asys.id
            );
        }
    }

    #[test]
    fn every_regional_has_a_tier1_provider() {
        let t = topo(Era::Y1995, 4);
        for asys in t.ases.iter().filter(|a| a.tier == AsTier::Regional) {
            let has = t
                .providers_of(asys.id)
                .any(|p| t.asys(p).tier == AsTier::Tier1);
            assert!(has, "regional {:?} lacks tier-1 transit", asys.id);
        }
    }

    #[test]
    fn tier1s_are_fully_meshed() {
        let t = topo(Era::Y1999, 5);
        let tier1s: Vec<AsId> = t
            .ases
            .iter()
            .filter(|a| a.tier == AsTier::Tier1)
            .map(|a| a.id)
            .collect();
        for (i, &a) in tier1s.iter().enumerate() {
            for &b in &tier1s[i + 1..] {
                assert!(
                    t.peers_of(a).any(|p| p == b),
                    "tier1 {a:?} and {b:?} are not peered"
                );
            }
        }
    }

    #[test]
    fn every_relationship_has_a_physical_link() {
        let t = topo(Era::Y1999, 6);
        for e in &t.as_edges {
            assert!(
                t.ases_physically_connected(e.a, e.b) || t.ases_physically_connected(e.b, e.a),
                "relationship {:?}-{:?} has no link",
                e.a,
                e.b
            );
        }
    }

    #[test]
    fn links_come_in_directional_pairs() {
        let t = topo(Era::Y1995, 8);
        for l in &t.links {
            assert!(
                t.link_between(l.to, l.from).is_some(),
                "link {:?}->{:?} has no reverse",
                l.from,
                l.to
            );
        }
    }

    #[test]
    fn intra_as_backbone_is_connected() {
        let t = topo(Era::Y1999, 9);
        for asys in &t.ases {
            let n = asys.routers.len();
            if n <= 1 {
                continue;
            }
            // BFS within the AS over internal links.
            let mut seen = vec![false; n];
            let index = |r: RouterId| asys.routers.iter().position(|&x| x == r).unwrap();
            seen[0] = true;
            let mut queue = vec![asys.routers[0]];
            while let Some(r) = queue.pop() {
                for l in t.links_from(r) {
                    if l.kind == LinkKind::Internal && t.router(l.to).asn == asys.id {
                        let j = index(l.to);
                        if !seen[j] {
                            seen[j] = true;
                            queue.push(l.to);
                        }
                    }
                }
            }
            assert!(
                seen.iter().all(|&s| s),
                "AS {:?} backbone disconnected",
                asys.id
            );
        }
    }

    #[test]
    fn hosts_live_on_stub_ases() {
        let t = topo(Era::Y1999, 10);
        assert!(!t.hosts.is_empty());
        for h in &t.hosts {
            assert_eq!(t.asys(h.asn).tier, AsTier::Stub);
            assert_eq!(t.router(h.router).asn, h.asn);
        }
    }

    #[test]
    fn some_hosts_rate_limit_and_some_dont() {
        let t = topo(Era::Y1999, 11);
        let limited = t.hosts.iter().filter(|h| h.icmp_rate_limited).count();
        assert!(limited > 0, "expected some rate-limited hosts");
        assert!(limited < t.hosts.len(), "expected some unlimited hosts");
    }

    #[test]
    fn eras_have_different_capacities() {
        let t95 = topo(Era::Y1995, 12);
        let t99 = topo(Era::Y1999, 12);
        let max95 = t95
            .links
            .iter()
            .map(|l| l.capacity_mbps)
            .fold(0.0, f64::max);
        let max99 = t99
            .links
            .iter()
            .map(|l| l.capacity_mbps)
            .fold(0.0, f64::max);
        assert!(max99 > 2.0 * max95, "1999 cores should be far faster");
    }

    #[test]
    fn public_exchanges_exist() {
        let t = topo(Era::Y1995, 13);
        let ixp_links = t
            .links
            .iter()
            .filter(|l| l.kind == LinkKind::PublicExchange)
            .count();
        assert!(ixp_links > 0, "1995 era should use public exchange fabric");
    }

    #[test]
    fn na_only_config_keeps_stub_hosts_in_na() {
        let mut cfg = TopologyConfig::for_era(Era::Y1999);
        cfg.stubs_na_only = true;
        let t = generate(&cfg, &mut Xoshiro256pp::seed_from_u64(14));
        for h in &t.hosts {
            assert!(CITIES[h.city].region.is_north_america(), "{}", h.name);
        }
    }

    #[test]
    fn prop_delays_are_physical() {
        let t = topo(Era::Y1999, 15);
        for l in &t.links {
            assert!(l.prop_delay_ms >= 0.05);
            assert!(
                l.prop_delay_ms < 120.0,
                "one-way {} ms is unphysical",
                l.prop_delay_ms
            );
        }
    }
}
