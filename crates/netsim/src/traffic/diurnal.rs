//! Diurnal and weekly load profile.
//!
//! Paper §4.1 cites \[TMW97\]: "many different parts of the Internet see
//! higher load during weekday working hours and lower load during other
//! times", and §6.3 finds alternate paths help most between 06:00 and
//! 12:00 PST and least on weekends and overnight. The profile below encodes
//! that shape: a weekday business-hours plateau with shoulders, and a flat,
//! lower weekend.

use crate::sim::clock::{Calendar, DayKind, SimTime};

/// Multiplicative load factor as a function of local time.
#[derive(Debug, Clone, Copy)]
pub struct DiurnalProfile {
    /// Deepest-night load fraction (relative to the weekday peak of 1.0).
    pub night_floor: f64,
    /// Weekend load fraction.
    pub weekend_level: f64,
}

impl Default for DiurnalProfile {
    fn default() -> Self {
        DiurnalProfile {
            night_floor: 0.35,
            weekend_level: 0.5,
        }
    }
}

impl DiurnalProfile {
    /// Load factor at local hour `h` (0..24) on a weekday.
    ///
    /// Piecewise-linear: floor overnight, morning ramp to the 09:00–17:00
    /// plateau at 1.0, evening decay back to the floor.
    fn weekday_factor(&self, h: f64) -> f64 {
        let f = self.night_floor;
        match h {
            h if h < 6.0 => f,
            h if h < 9.0 => f + (1.0 - f) * (h - 6.0) / 3.0,
            h if h < 17.0 => 1.0,
            h if h < 22.0 => 1.0 - (1.0 - f) * (h - 17.0) / 5.0,
            _ => f,
        }
    }

    /// Load factor at simulated time `t` for a site at `utc_offset_hours`.
    pub fn factor(&self, cal: &Calendar, t: SimTime, utc_offset_hours: i8) -> f64 {
        match cal.day_kind(t, utc_offset_hours) {
            DayKind::Weekend => self.weekend_level,
            DayKind::Weekday => self.weekday_factor(cal.local_hour(t, utc_offset_hours)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn factor_at(hours_from_monday_utc: f64, tz: i8) -> f64 {
        DiurnalProfile::default().factor(&Calendar, SimTime::from_hours(hours_from_monday_utc), tz)
    }

    #[test]
    fn business_hours_peak() {
        // Tuesday 12:00 local (UTC site).
        assert_eq!(factor_at(24.0 + 12.0, 0), 1.0);
    }

    #[test]
    fn night_floor_applies() {
        // Tuesday 03:00 local.
        let f = factor_at(24.0 + 3.0, 0);
        assert_eq!(f, DiurnalProfile::default().night_floor);
    }

    #[test]
    fn weekend_is_flat_and_low() {
        let sat_noon = factor_at(5.0 * 24.0 + 12.0, 0);
        let sat_night = factor_at(5.0 * 24.0 + 2.0, 0);
        assert_eq!(sat_noon, 0.5);
        assert_eq!(sat_night, 0.5);
    }

    #[test]
    fn ramps_are_monotone() {
        let p = DiurnalProfile::default();
        let mut prev = p.weekday_factor(5.0);
        for i in 50..=90 {
            let f = p.weekday_factor(i as f64 / 10.0);
            assert!(f >= prev - 1e-12, "morning ramp must rise");
            prev = f;
        }
        let mut prev = p.weekday_factor(17.0);
        for i in 170..=220 {
            let f = p.weekday_factor(i as f64 / 10.0);
            assert!(f <= prev + 1e-12, "evening ramp must fall");
            prev = f;
        }
    }

    #[test]
    fn timezone_shifts_the_peak() {
        // Monday 20:00 UTC = Monday 12:00 in Seattle (UTC-8): peak there,
        // evening shoulder in London.
        let seattle = factor_at(20.0, -8);
        let london = factor_at(20.0, 0);
        assert_eq!(seattle, 1.0);
        assert!(london < 1.0);
    }

    #[test]
    fn factor_is_bounded() {
        let p = DiurnalProfile::default();
        for h in 0..240 {
            let f = p.factor(&Calendar, SimTime::from_hours(h as f64), -8);
            assert!((0.0..=1.0).contains(&f));
        }
    }
}
