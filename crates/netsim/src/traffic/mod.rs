//! Traffic load, queuing delay, and loss.
//!
//! The paper's §7 decomposes round-trip time into propagation and queuing
//! delay and hypothesizes that "superior alternate paths result primarily
//! from avoiding congestion" — then finds both congestion *and* propagation
//! delay matter. The load model must therefore produce realistic
//! congestion: diurnal and weekly cycles ([`diurnal`]), heterogeneous
//! per-link base load with chronically hot public exchange points, and
//! transient congestion events ([`load`]).

pub mod diurnal;
pub mod load;

pub use diurnal::DiurnalProfile;
pub use load::{LinkSample, LoadConfig, LoadModel};
