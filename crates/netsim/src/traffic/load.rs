//! Per-link utilization, queuing delay, and loss.
//!
//! Every link carries background traffic we never simulate packet-by-packet;
//! instead each link has a *utilization process* ρ(t) composed of:
//!
//! * a **base utilization** drawn per link by kind — public exchange points
//!   run hot (the MAE-East of paper §7.1's "particularly poor quality …
//!   congested exchange points"), private interconnects and internal
//!   backbone links cooler;
//! * the **diurnal/weekly factor** of the link's location
//!   ([`crate::traffic::diurnal`]);
//! * slow **background wander** (two incommensurate sinusoids with per-link
//!   phases) so paths measured at different times genuinely differ;
//! * transient **congestion events** (Poisson arrivals, exponential
//!   durations) standing in for flash crowds and reroutes.
//!
//! From ρ(t), per-probe queuing delay is sampled from an exponential with an
//! M/M/1-shaped mean `scale · ρ/(1−ρ)`, and loss is Bernoulli with a
//! probability that turns up sharply past a knee — idle links barely drop,
//! saturated ones drop several percent, as in \[Bol93\]/\[Pax97a\].

use detour_prng::Rng;
use detour_prng::Xoshiro256pp;

use crate::geo::CITIES;
use crate::sim::clock::{Calendar, SimTime};
use crate::topology::{LinkId, LinkKind, Topology};
use crate::traffic::diurnal::DiurnalProfile;

/// Tuning for the load model.
#[derive(Debug, Clone, Copy)]
pub struct LoadConfig {
    /// Base-utilization range for internal backbone links.
    pub base_internal: (f64, f64),
    /// Base-utilization range for stub access uplinks (sized for the
    /// stub's own traffic, so cooler than transit interconnects — a detour
    /// pays two extra access traversals, and those must not drown the
    /// congestion it avoids).
    pub base_access: (f64, f64),
    /// Base-utilization range for private interconnects.
    pub base_private: (f64, f64),
    /// Base-utilization range for public exchange ports.
    pub base_public: (f64, f64),
    /// Queue-delay scale (ms) at ρ/(1−ρ) = 1 for internal links.
    pub queue_scale_internal_ms: f64,
    /// Queue-delay scale (ms) for private interconnects.
    pub queue_scale_private_ms: f64,
    /// Queue-delay scale (ms) for public exchange ports.
    pub queue_scale_public_ms: f64,
    /// Hard cap on mean queuing delay (ms) — buffers are finite.
    pub queue_cap_ms: f64,
    /// Baseline loss probability per link per packet.
    pub loss_base: f64,
    /// Loss scale above the knee for ordinary links.
    pub loss_scale: f64,
    /// Loss scale above the knee for public exchange ports.
    pub loss_scale_public: f64,
    /// Utilization knee where loss starts climbing.
    pub loss_knee: f64,
    /// Mean congestion events per link per day (ordinary links).
    pub events_per_day: f64,
    /// Mean congestion events per link per day (public exchanges).
    pub events_per_day_public: f64,
    /// Mean congestion-event duration, seconds.
    pub event_duration_s: f64,
    /// Congestion-event magnitude range (added utilization).
    pub event_magnitude: (f64, f64),
    /// Mean full-outage events per link per day (fiber cuts, router
    /// crashes, misconfigurations — the failures RON-style overlays route
    /// around). Rare: most links never fail during a trace.
    pub outages_per_day: f64,
    /// Mean outage duration, seconds.
    pub outage_duration_s: f64,
    /// Fraction of internal/private links that are chronic hotspots.
    ///
    /// Congestion on the real Internet is concentrated: a few
    /// under-provisioned circuits and exchange ports account for most
    /// queuing, while typical links barely queue even at peak. That
    /// concentration is what lets a detour around one hotspot win *more*
    /// during busy hours instead of paying uniform peak tax everywhere
    /// (paper §6.3).
    pub hot_fraction: f64,
    /// Base-utilization range for hotspot links.
    pub base_hot: (f64, f64),
}

impl LoadConfig {
    /// Era presets: 1995 runs hotter and lossier than 1999 (the paper's D2
    /// loss-rate CDF shows substantially more improvement than UW's).
    pub fn for_era(era: crate::topology::generator::Era) -> LoadConfig {
        use crate::topology::generator::Era;
        match era {
            Era::Y1995 => LoadConfig {
                base_internal: (0.12, 0.42),
                base_access: (0.12, 0.45),
                base_private: (0.18, 0.55),
                base_public: (0.60, 0.96),
                queue_scale_internal_ms: 2.0,
                queue_scale_private_ms: 5.0,
                queue_scale_public_ms: 18.0,
                queue_cap_ms: 180.0,
                // Mid-90s loss was substantial (Paxson measured ~5 %
                // average in 1995). The per-link log-uniform multiplier has
                // mean ~2.15, so 0.005 here yields ~1 % per link on average.
                loss_base: 0.005,
                loss_scale: 0.06,
                loss_scale_public: 0.15,
                loss_knee: 0.65,
                events_per_day: 0.25,
                events_per_day_public: 0.9,
                event_duration_s: 45.0 * 60.0,
                event_magnitude: (0.2, 0.55),
                outages_per_day: 0.03,
                outage_duration_s: 12.0 * 60.0,
                hot_fraction: 0.25,
                base_hot: (0.60, 0.92),
            },
            Era::Y1999 => LoadConfig {
                base_internal: (0.10, 0.38),
                base_access: (0.10, 0.40),
                base_private: (0.15, 0.50),
                base_public: (0.50, 0.93),
                queue_scale_internal_ms: 1.5,
                queue_scale_private_ms: 3.0,
                queue_scale_public_ms: 12.0,
                queue_cap_ms: 150.0,
                loss_base: 0.0015,
                loss_scale: 0.04,
                loss_scale_public: 0.10,
                loss_knee: 0.70,
                events_per_day: 0.2,
                events_per_day_public: 0.8,
                event_duration_s: 30.0 * 60.0,
                event_magnitude: (0.15, 0.5),
                outages_per_day: 0.02,
                outage_duration_s: 10.0 * 60.0,
                hot_fraction: 0.20,
                base_hot: (0.55, 0.88),
            },
        }
    }
}

/// Per-link static load state.
#[derive(Debug, Clone)]
struct LinkLoad {
    base: f64,
    /// Phases and amplitudes of the two wander sinusoids.
    wander: [(f64, f64); 2],
    /// Sorted congestion events `(start_s, end_s, magnitude)`.
    events: Vec<(f64, f64, f64)>,
    /// Sorted full-outage windows `(start_s, end_s)`.
    outages: Vec<(f64, f64)>,
    queue_scale_ms: f64,
    /// Per-link baseline loss: links are *not* equally lossy — a flaky
    /// trans-oceanic circuit and a clean campus uplink differ by orders of
    /// magnitude, and that heterogeneity is what makes low-loss detours
    /// possible (paper Figures 3–5).
    loss_base: f64,
    loss_scale: f64,
    tz: i8,
}

/// One sampled traversal of one link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSample {
    /// Queuing delay experienced, milliseconds.
    pub queue_delay_ms: f64,
    /// Whether the packet was dropped at this link.
    pub lost: bool,
}

/// The complete load model for a topology over a time horizon.
#[derive(Debug, Clone)]
pub struct LoadModel {
    cfg: LoadConfig,
    profile: DiurnalProfile,
    cal: Calendar,
    links: Vec<LinkLoad>,
}

/// Wander periods (seconds): ~3.1 h and ~13.9 h, incommensurate with each
/// other and with the 24 h diurnal cycle.
const WANDER_PERIODS_S: [f64; 2] = [11_160.0, 50_040.0];

impl LoadModel {
    /// Builds the load process for every link of `topo` over
    /// `[0, horizon_s)` seconds. Deterministic in `seed`.
    pub fn generate(topo: &Topology, cfg: LoadConfig, seed: u64, horizon_s: f64) -> LoadModel {
        let mut rng = Xoshiro256pp::seed_from_u64(seed ^ 0x10ad_10ad_10ad_10ad);
        let links = topo
            .links
            .iter()
            .map(|l| {
                // A non-internal link touching a stub AS is an access
                // uplink, not a transit interconnect.
                let touches_stub = {
                    use crate::topology::AsTier;
                    topo.asys(topo.router(l.from).asn).tier == AsTier::Stub
                        || topo.asys(topo.router(l.to).asn).tier == AsTier::Stub
                };
                let (base_range, queue_scale, loss_scale, ev_rate) = match l.kind {
                    LinkKind::Internal => (
                        cfg.base_internal,
                        cfg.queue_scale_internal_ms,
                        cfg.loss_scale,
                        cfg.events_per_day,
                    ),
                    LinkKind::PrivateInterconnect if touches_stub => (
                        cfg.base_access,
                        cfg.queue_scale_private_ms,
                        cfg.loss_scale,
                        cfg.events_per_day,
                    ),
                    LinkKind::PrivateInterconnect => (
                        cfg.base_private,
                        cfg.queue_scale_private_ms,
                        cfg.loss_scale,
                        cfg.events_per_day,
                    ),
                    LinkKind::PublicExchange => (
                        cfg.base_public,
                        cfg.queue_scale_public_ms,
                        cfg.loss_scale_public,
                        cfg.events_per_day_public,
                    ),
                };
                let mut base = rng.gen_range(base_range.0..base_range.1);
                // Chronic hotspots among ordinary links (public exchange
                // ports are already hot by their own base range).
                if l.kind != LinkKind::PublicExchange && rng.gen_bool(cfg.hot_fraction) {
                    base = rng.gen_range(cfg.base_hot.0..cfg.base_hot.1);
                }
                let wander = [
                    (
                        rng.gen_range(0.0..std::f64::consts::TAU),
                        rng.gen_range(0.04..0.14),
                    ),
                    (
                        rng.gen_range(0.0..std::f64::consts::TAU),
                        rng.gen_range(0.03..0.10),
                    ),
                ];
                // Log-uniform per-link loss multiplier over [0.1, 10]: some
                // links are nearly lossless, some chronically flaky.
                let loss_mult = (rng.gen_range(-1.0f64..1.0) * 10.0f64.ln()).exp();
                // Poisson congestion events over the horizon.
                let mut events = Vec::new();
                let mean_gap = 86_400.0 / ev_rate.max(1e-9);
                let mut t = -(rng.gen_range(f64::MIN_POSITIVE..1.0f64)).ln() * mean_gap;
                while t < horizon_s {
                    let dur =
                        -(rng.gen_range(f64::MIN_POSITIVE..1.0f64)).ln() * cfg.event_duration_s;
                    let mag = rng.gen_range(cfg.event_magnitude.0..cfg.event_magnitude.1);
                    events.push((t, t + dur.max(60.0), mag));
                    t += dur + -(rng.gen_range(f64::MIN_POSITIVE..1.0f64)).ln() * mean_gap;
                }
                // Rare full outages, Poisson over the horizon.
                let mut outages = Vec::new();
                let outage_gap = 86_400.0 / cfg.outages_per_day.max(1e-9);
                let mut ot = -(rng.gen_range(f64::MIN_POSITIVE..1.0f64)).ln() * outage_gap;
                while ot < horizon_s {
                    let dur = (-(rng.gen_range(f64::MIN_POSITIVE..1.0f64)).ln()
                        * cfg.outage_duration_s)
                        .max(30.0);
                    outages.push((ot, ot + dur));
                    ot += dur + -(rng.gen_range(f64::MIN_POSITIVE..1.0f64)).ln() * outage_gap;
                }
                let tz = CITIES[topo.router(l.from).city].utc_offset_hours;
                LinkLoad {
                    base,
                    wander,
                    events,
                    outages,
                    queue_scale_ms: queue_scale,
                    loss_base: cfg.loss_base * loss_mult,
                    loss_scale,
                    tz,
                }
            })
            .collect();
        LoadModel {
            cfg,
            profile: DiurnalProfile::default(),
            cal: Calendar,
            links,
        }
    }

    /// Instantaneous utilization of `link` at time `t`, in `[0, 0.97]`.
    pub fn utilization(&self, link: LinkId, t: SimTime) -> f64 {
        let ll = &self.links[link.0 as usize];
        let diurnal = self.profile.factor(&self.cal, t, ll.tz);
        let mut rho = ll.base * diurnal;
        for (i, &(phase, amp)) in ll.wander.iter().enumerate() {
            rho += amp * (std::f64::consts::TAU * t.0 / WANDER_PERIODS_S[i] + phase).sin();
        }
        // Congestion events: binary-search the sorted starts, then scan the
        // handful of potentially overlapping predecessors.
        let i = ll.events.partition_point(|&(s, _, _)| s <= t.0);
        for &(s, e, m) in ll.events[..i].iter().rev().take(4) {
            if t.0 >= s && t.0 < e {
                rho += m;
            }
        }
        rho.clamp(0.0, 0.97)
    }

    /// True when `link` is in a full-outage window at `t`.
    pub fn is_down(&self, link: LinkId, t: SimTime) -> bool {
        let ll = &self.links[link.0 as usize];
        let i = ll.outages.partition_point(|&(s, _)| s <= t.0);
        i > 0 && t.0 < ll.outages[i - 1].1
    }

    /// Mean queuing delay (ms) at utilization `rho` for `link`.
    pub fn mean_queue_delay_ms(&self, link: LinkId, rho: f64) -> f64 {
        let ll = &self.links[link.0 as usize];
        (ll.queue_scale_ms * rho / (1.0 - rho).max(0.03)).min(self.cfg.queue_cap_ms)
    }

    /// Loss probability at utilization `rho` for `link`.
    pub fn loss_probability(&self, link: LinkId, rho: f64) -> f64 {
        let ll = &self.links[link.0 as usize];
        let knee = self.cfg.loss_knee;
        let over = ((rho - knee) / (1.0 - knee)).max(0.0);
        (ll.loss_base + ll.loss_scale * over * over).min(0.5)
    }

    /// Per-link probability that a packet hits a pathological delay burst
    /// (router slow path, transient rerouting, upstream buffer storm). Rare
    /// per link, but a 12-link path sees one every ~20 packets — the heavy
    /// RTT tails of \[Bol93\]/\[Pax97a\].
    pub const SPIKE_PROB: f64 = 0.0004;

    /// Mean extra delay of a burst, milliseconds.
    pub const SPIKE_MEAN_MS: f64 = 300.0;

    /// Samples one packet's traversal of `link` at time `t`: Gamma(2)
    /// queuing delay around the M/M/1 mean, a rare heavy-tail delay spike,
    /// and Bernoulli loss.
    pub fn sample(&self, link: LinkId, t: SimTime, rng: &mut impl Rng) -> LinkSample {
        if self.is_down(link, t) {
            return LinkSample {
                queue_delay_ms: 0.0,
                lost: true,
            };
        }
        let rho = (self.utilization(link, t) + rng.gen_range(-0.04..0.04f64)).clamp(0.0, 0.97);
        let mean_q = self.mean_queue_delay_ms(link, rho);
        // Gamma(k=4): the sum of four exponentials at mean/4 — right-skewed
        // like a real queue, but mild enough that path means track medians
        // (the paper's §6.1 finding).
        let ln_prod: f64 = (0..4)
            .map(|_| rng.gen_range(f64::MIN_POSITIVE..1.0f64).ln())
            .sum();
        let mut queue_delay_ms = (-mean_q / 4.0 * ln_prod).min(self.cfg.queue_cap_ms * 4.0);
        if rng.gen_bool(Self::SPIKE_PROB) {
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            queue_delay_ms += -Self::SPIKE_MEAN_MS * u.ln();
        }
        let lost = rng.gen_bool(self.loss_probability(link, rho));
        LinkSample {
            queue_delay_ms,
            lost,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::generator::{generate, Era, TopologyConfig};

    fn model() -> (Topology, LoadModel) {
        let topo = generate(
            &TopologyConfig::for_era(Era::Y1999),
            &mut Xoshiro256pp::seed_from_u64(5),
        );
        let cfg = LoadConfig::for_era(Era::Y1999);
        let lm = LoadModel::generate(&topo, cfg, 5, 14.0 * 86_400.0);
        (topo, lm)
    }

    #[test]
    fn utilization_is_bounded() {
        let (topo, lm) = model();
        for l in topo.links.iter().step_by(7) {
            for h in (0..336).step_by(13) {
                let rho = lm.utilization(l.id, SimTime::from_hours(h as f64));
                assert!((0.0..=0.97).contains(&rho), "rho = {rho}");
            }
        }
    }

    #[test]
    fn business_hours_run_hotter_than_night() {
        let (topo, lm) = model();
        // Average across links: Tuesday 11:00 local vs Tuesday 03:00 local.
        let mut day = 0.0;
        let mut night = 0.0;
        let mut n = 0.0;
        for l in &topo.links {
            let tz = CITIES[topo.router(l.from).city].utc_offset_hours as f64;
            let day_t = SimTime::from_hours(24.0 + 11.0 - tz);
            let night_t = SimTime::from_hours(24.0 + 3.0 - tz);
            day += lm.utilization(l.id, day_t);
            night += lm.utilization(l.id, night_t);
            n += 1.0;
        }
        assert!(day / n > 1.4 * (night / n), "day {day} vs night {night}");
    }

    #[test]
    fn public_exchanges_run_hotter() {
        let (topo, lm) = model();
        // Tuesday 20:00 UTC = noon PST: most links are at their local peak.
        let avg = |kind: LinkKind| {
            let ls: Vec<_> = topo.links.iter().filter(|l| l.kind == kind).collect();
            let sum: f64 = ls
                .iter()
                .map(|l| lm.utilization(l.id, SimTime::from_hours(44.0)))
                .sum();
            sum / ls.len().max(1) as f64
        };
        assert!(
            avg(LinkKind::PublicExchange) > avg(LinkKind::Internal) + 0.08,
            "public {} vs internal {}",
            avg(LinkKind::PublicExchange),
            avg(LinkKind::Internal)
        );
    }

    #[test]
    fn loss_probability_turns_up_past_knee() {
        let (topo, lm) = model();
        let l = topo.links[0].id;
        let low = lm.loss_probability(l, 0.3);
        let mid = lm.loss_probability(l, 0.75);
        let high = lm.loss_probability(l, 0.95);
        assert!(low < 0.01);
        assert!(high > mid && mid >= low);
        assert!(high > 0.01, "saturated links must visibly drop: {high}");
    }

    #[test]
    fn queue_delay_grows_with_utilization_and_caps() {
        let (topo, lm) = model();
        let l = topo.links[0].id;
        assert!(lm.mean_queue_delay_ms(l, 0.9) > lm.mean_queue_delay_ms(l, 0.3));
        assert!(lm.mean_queue_delay_ms(l, 0.999) <= 120.0);
    }

    #[test]
    fn sampling_is_deterministic_in_rng() {
        let (topo, lm) = model();
        let l = topo.links[3].id;
        let t = SimTime::from_hours(50.0);
        let mut r1 = Xoshiro256pp::seed_from_u64(1);
        let mut r2 = Xoshiro256pp::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(lm.sample(l, t, &mut r1), lm.sample(l, t, &mut r2));
        }
    }

    #[test]
    fn congestion_events_move_utilization() {
        // Somewhere in 14 days, some link must be pushed above its
        // event-free level.
        let (topo, lm) = model();
        let mut saw_spike = false;
        'outer: for l in &topo.links {
            let ll = &lm.links[l.id.0 as usize];
            for &(s, e, m) in &ll.events {
                if m < 0.15 || e - s < 120.0 {
                    continue;
                }
                let during = lm.utilization(l.id, SimTime(s + 30.0));
                let after = lm.utilization(l.id, SimTime(e + 1.0));
                if during > after + 0.1 {
                    saw_spike = true;
                    break 'outer;
                }
            }
        }
        assert!(saw_spike, "no congestion spike observed in two weeks");
    }

    #[test]
    fn outages_black_hole_the_link() {
        let (topo, lm) = model();
        // Find any link with an outage window and verify total loss inside.
        let mut found = false;
        for l in &topo.links {
            let ll = &lm.links[l.id.0 as usize];
            if let Some(&(start, end)) = ll.outages.first() {
                if end > start + 60.0 && end < 14.0 * 86_400.0 {
                    found = true;
                    let mid = SimTime((start + end) / 2.0);
                    assert!(lm.is_down(l.id, mid));
                    assert!(!lm.is_down(l.id, SimTime(end + 1.0)));
                    let mut rng = Xoshiro256pp::seed_from_u64(3);
                    for _ in 0..20 {
                        assert!(lm.sample(l.id, mid, &mut rng).lost);
                    }
                    break;
                }
            }
        }
        assert!(
            found,
            "two weeks x hundreds of links should include an outage"
        );
    }

    #[test]
    fn outages_are_rare() {
        let (topo, lm) = model();
        let horizon = 14.0 * 86_400.0;
        let total_down: f64 = topo
            .links
            .iter()
            .map(|l| {
                lm.links[l.id.0 as usize]
                    .outages
                    .iter()
                    .map(|&(s, e)| (e.min(horizon) - s).max(0.0))
                    .sum::<f64>()
            })
            .sum();
        let frac = total_down / (horizon * topo.links.len() as f64);
        assert!(frac < 0.005, "links down {frac} of the time");
        assert!(frac > 0.0, "some outage expected across the whole mesh");
    }

    #[test]
    fn mean_sampled_queue_delay_tracks_model_mean() {
        let (topo, lm) = model();
        let l = topo.links[0].id;
        let t = SimTime::from_hours(34.0); // midday Tuesday
        let mut rng = Xoshiro256pp::seed_from_u64(9);
        let n = 4000;
        let mean: f64 = (0..n)
            .map(|_| lm.sample(l, t, &mut rng).queue_delay_ms)
            .sum::<f64>()
            / n as f64;
        let rho = lm.utilization(l, t);
        // The sampled mean sits near the model mean plus the small constant
        // contribution of delay spikes (SPIKE_PROB × SPIKE_MEAN_MS ≈ 0.5 ms).
        let model_mean =
            lm.mean_queue_delay_ms(l, rho) + LoadModel::SPIKE_PROB * LoadModel::SPIKE_MEAN_MS;
        assert!(
            (mean - model_mean).abs() < model_mean * 0.5 + 1.0,
            "sampled {mean} vs model {model_mean}"
        );
    }
}
