//! Active probing: `ping` and `traceroute` semantics.
//!
//! The UW datasets were collected through public traceroute servers
//! (paper §4.2): each `traceroute` invocation walks the forward path with
//! TTL-limited probes and "takes three consecutive samples of the round
//! trip time to the end host". Two behaviors of that machinery matter to
//! the data and are modeled here:
//!
//! * **ICMP rate limiting** — some hosts throttle their ICMP responses, so
//!   "traceroute requests to rate limiting hosts would observe a higher
//!   loss rate than warranted"; the first closely spaced probe is answered,
//!   later ones usually are not.
//! * **Asymmetric return paths** — replies from the destination travel the
//!   *reverse-routed* path, which policy routing often makes different from
//!   the forward one.
//!
//! Replies from intermediate routers are modeled as retracing the forward
//! prefix. (Real reverse paths from transit routers could differ; computing
//! them would require per-router routing state that traceroute itself
//! cannot observe either — the end-host samples, which all analyses use,
//! do take the true reverse path.)

use detour_prng::Rng;

use crate::net::Network;
use crate::sim::clock::SimTime;
use crate::topology::{AsId, HostId, RouterId};

/// Result of a single echo ("ping") exchange.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PingResult {
    /// Round-trip time; `None` when the probe or its reply was lost.
    pub rtt_ms: Option<f64>,
}

/// One traceroute hop: the responding router and its three RTT samples.
#[derive(Debug, Clone)]
pub struct TracerouteHop {
    /// Responding router.
    pub router: RouterId,
    /// AS that owns the router (traceroutes reveal AS paths — Figure 14
    /// maps hops to ASes).
    pub asn: AsId,
    /// Three RTT samples; `None` entries were lost.
    pub rtts: [Option<f64>; 3],
}

/// Result of one traceroute invocation.
#[derive(Debug, Clone)]
pub struct TracerouteResult {
    /// Per-hop records, source-adjacent first. The final entry is the
    /// destination host's attachment router.
    pub hops: Vec<TracerouteHop>,
    /// Whether the destination responded to at least one probe.
    pub reached: bool,
    /// Wall-clock the invocation took, seconds (probes are sequential).
    pub elapsed_s: f64,
}

impl TracerouteResult {
    /// The three end-host RTT samples (the measurements every analysis
    /// consumes). Empty if the path never resolved.
    pub fn destination_samples(&self) -> [Option<f64>; 3] {
        self.hops.last().map_or([None; 3], |h| h.rtts)
    }

    /// The AS-level path observed, consecutive duplicates collapsed.
    pub fn as_path(&self) -> Vec<AsId> {
        let mut out: Vec<AsId> = Vec::new();
        for h in &self.hops {
            if out.last() != Some(&h.asn) {
                out.push(h.asn);
            }
        }
        out
    }
}

/// Probability that a rate-limiting host answers a closely following probe
/// (the first probe of a burst is always eligible).
const RATE_LIMITED_FOLLOWUP_RESPONSE_PROB: f64 = 0.15;

/// ICMP response-generation delay at a router or host, milliseconds
/// (sampled uniformly; slow-path packet handling).
const ICMP_GEN_DELAY_RANGE_MS: (f64, f64) = (0.1, 1.2);

/// One echo exchange between hosts: forward transit, destination
/// processing, reverse transit over the *reverse-routed* path.
pub fn ping(net: &Network, src: HostId, dst: HostId, t: SimTime, rng: &mut impl Rng) -> PingResult {
    let Some(fwd) = net.forward_path(src, dst, t) else {
        return PingResult { rtt_ms: None };
    };
    let Some(rev) = net.forward_path(dst, src, t) else {
        return PingResult { rtt_ms: None };
    };
    let out = net.transit(&fwd, t, rng);
    if out.lost {
        return PingResult { rtt_ms: None };
    }
    let t_reply = t.plus_secs(out.delay_ms / 1000.0);
    let back = net.transit(&rev, t_reply, rng);
    if back.lost {
        return PingResult { rtt_ms: None };
    }
    let icmp = rng.gen_range(ICMP_GEN_DELAY_RANGE_MS.0..ICMP_GEN_DELAY_RANGE_MS.1);
    PingResult {
        rtt_ms: Some(out.delay_ms + icmp + back.delay_ms),
    }
}

/// A full traceroute invocation from `src` to `dst` starting at time `t`.
///
/// Each hop along the forward path is probed three times sequentially;
/// probes to intermediate routers retrace the forward prefix, probes to the
/// destination host return along the true reverse path and are subject to
/// the destination's ICMP rate limiting.
pub fn traceroute(
    net: &Network,
    src: HostId,
    dst: HostId,
    t: SimTime,
    rng: &mut impl Rng,
) -> TracerouteResult {
    const PROBE_TIMEOUT_S: f64 = 5.0;
    const INTER_PROBE_GAP_S: f64 = 0.05;

    let Some(fwd) = net.forward_path(src, dst, t) else {
        return TracerouteResult {
            hops: Vec::new(),
            reached: false,
            elapsed_s: 0.0,
        };
    };
    let rev = net.forward_path(dst, src, t);
    let dst_rate_limited = net.host(dst).icmp_rate_limited;

    let mut now = t;
    let mut hops = Vec::new();
    let n_hops = fwd.links.len();
    for hop in 1..=n_hops {
        let router = fwd.routers[hop];
        let asn = net.topology.router(router).asn;
        let is_destination = hop == n_hops;
        let mut rtts = [None; 3];
        for (k, slot) in rtts.iter_mut().enumerate() {
            // Rate limiting: the first probe of the burst is answered;
            // follow-ups to a limiting destination usually are not.
            let suppressed = is_destination
                && dst_rate_limited
                && k > 0
                && !rng.gen_bool(RATE_LIMITED_FOLLOWUP_RESPONSE_PROB);
            if suppressed {
                now = now.plus_secs(PROBE_TIMEOUT_S);
                continue;
            }
            let out = net.transit_prefix(&fwd, hop, now, rng);
            if out.lost {
                now = now.plus_secs(PROBE_TIMEOUT_S);
                continue;
            }
            let t_reply = now.plus_secs(out.delay_ms / 1000.0);
            let back = if is_destination {
                match &rev {
                    Some(rev) => net.transit(rev, t_reply, rng),
                    None => {
                        now = now.plus_secs(PROBE_TIMEOUT_S);
                        continue;
                    }
                }
            } else {
                // Intermediate routers: retrace the forward prefix.
                net.transit_prefix(&fwd, hop, t_reply, rng)
            };
            if back.lost {
                now = now.plus_secs(PROBE_TIMEOUT_S);
                continue;
            }
            let icmp = rng.gen_range(ICMP_GEN_DELAY_RANGE_MS.0..ICMP_GEN_DELAY_RANGE_MS.1);
            let rtt = out.delay_ms + icmp + back.delay_ms;
            *slot = Some(rtt);
            now = now.plus_secs(rtt / 1000.0 + INTER_PROBE_GAP_S);
        }
        hops.push(TracerouteHop { router, asn, rtts });
    }
    let reached = hops
        .last()
        .is_some_and(|h| h.rtts.iter().any(Option::is_some));
    TracerouteResult {
        hops,
        reached,
        elapsed_s: now.0 - t.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::NetworkConfig;
    use crate::topology::generator::Era;
    use detour_prng::Xoshiro256pp;

    fn net() -> Network {
        Network::generate(&NetworkConfig::for_era(Era::Y1999, 1234, 7.0))
    }

    fn pick_hosts(net: &Network, limited: bool) -> (HostId, HostId) {
        let src = net.hosts()[0].id;
        let dst = net
            .hosts()
            .iter()
            .find(|h| h.icmp_rate_limited == limited && h.id != src && h.asn != net.host(src).asn)
            .expect("host with requested limiting exists")
            .id;
        (src, dst)
    }

    #[test]
    fn ping_rtt_is_plausible() {
        let n = net();
        let (s, d) = pick_hosts(&n, false);
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let t = SimTime::from_hours(20.0);
        let mut got = 0;
        for _ in 0..50 {
            if let Some(rtt) = ping(&n, s, d, t, &mut rng).rtt_ms {
                assert!((0.1..2000.0).contains(&rtt), "rtt {rtt}");
                got += 1;
            }
        }
        assert!(got > 25, "most pings should succeed, got {got}/50");
    }

    #[test]
    fn traceroute_reports_every_hop() {
        let n = net();
        let (s, d) = pick_hosts(&n, false);
        let t = SimTime::from_hours(30.0);
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let tr = traceroute(&n, s, d, t, &mut rng);
        let fwd = n.forward_path(s, d, t).unwrap();
        assert_eq!(tr.hops.len(), fwd.links.len());
        assert!(tr.reached);
        assert_eq!(tr.hops.last().unwrap().router, n.host(d).router);
        assert!(tr.elapsed_s > 0.0);
    }

    #[test]
    fn hop_rtts_generally_increase_along_the_path() {
        // Not strictly monotone (queuing noise), but the last hop's mean
        // must exceed the first hop's mean on a multi-AS path.
        let n = net();
        let (s, d) = pick_hosts(&n, false);
        let t = SimTime::from_hours(26.0);
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let mut first = Vec::new();
        let mut last = Vec::new();
        for _ in 0..20 {
            let tr = traceroute(&n, s, d, t, &mut rng);
            if let Some(h) = tr.hops.first() {
                first.extend(h.rtts.iter().flatten());
            }
            if let Some(h) = tr.hops.last() {
                last.extend(h.rtts.iter().flatten());
            }
        }
        let mean = |v: &Vec<f64>| v.iter().sum::<f64>() / v.len() as f64;
        assert!(mean(&last) > mean(&first));
    }

    #[test]
    fn rate_limited_hosts_lose_followup_probes() {
        let n = net();
        let (s, d_lim) = pick_hosts(&n, true);
        let (_, d_ok) = pick_hosts(&n, false);
        let t = SimTime::from_hours(40.0);
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        let followup_loss = |dst: HostId, rng: &mut Xoshiro256pp| -> f64 {
            let mut lost = 0;
            let mut total = 0;
            for _ in 0..30 {
                let tr = traceroute(&n, s, dst, t, rng);
                let samples = tr.destination_samples();
                for r in &samples[1..] {
                    total += 1;
                    if r.is_none() {
                        lost += 1;
                    }
                }
            }
            lost as f64 / total as f64
        };
        let lim = followup_loss(d_lim, &mut rng);
        let ok = followup_loss(d_ok, &mut rng);
        assert!(
            lim > ok + 0.3,
            "rate-limited follow-up loss {lim} should far exceed normal {ok}"
        );
    }

    #[test]
    fn as_path_from_traceroute_matches_routing() {
        let n = net();
        let (s, d) = pick_hosts(&n, false);
        let t = SimTime::from_hours(12.0);
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let tr = traceroute(&n, s, d, t, &mut rng);
        let expected = n.forward_path(s, d, t).unwrap().as_sequence(&n.topology);
        // The traceroute's AS path skips the source AS only if the first
        // reported hop is already in the next AS; build the comparable form.
        let mut observed = vec![n.host(s).asn];
        observed.extend(tr.as_path());
        observed.dedup();
        assert_eq!(observed, expected);
    }

    #[test]
    fn probing_is_deterministic_in_rng() {
        let n = net();
        let (s, d) = pick_hosts(&n, false);
        let t = SimTime::from_hours(8.0);
        let a = traceroute(&n, s, d, t, &mut Xoshiro256pp::seed_from_u64(6));
        let b = traceroute(&n, s, d, t, &mut Xoshiro256pp::seed_from_u64(6));
        for (x, y) in a.hops.iter().zip(&b.hops) {
            assert_eq!(x.rtts, y.rtts);
        }
    }
}
