//! Deterministic property-test harness — the in-tree `proptest` replacement.
//!
//! A property is a closure over an [`Xoshiro256pp`]: it draws whatever
//! inputs it needs and asserts invariants with ordinary `assert!`s. The
//! harness runs a fixed budget of cases, each with an independent seed
//! derived from the property name and the case index, so:
//!
//! * every run of the suite exercises exactly the same cases (no flaky
//!   CI, no shrink-dependent nondeterminism);
//! * a failure reports the *case seed*, and re-running with
//!   `DETOUR_PROP_SEED=<seed>` replays just that case under a debugger;
//! * `DETOUR_PROP_CASES=<n>` scales the whole suite's budget up or down
//!   without touching code (e.g. a 10 000-case soak before a release).
//!
//! ```
//! use detour_prng::{check, Rng};
//!
//! check::check("reverse twice is identity", |rng| {
//!     let n = rng.gen_range(0..50usize);
//!     let xs: Vec<u64> = (0..n).map(|_| rng.next_u64()).collect();
//!     let mut ys = xs.clone();
//!     ys.reverse();
//!     ys.reverse();
//!     assert_eq!(xs, ys);
//! });
//! ```

use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::{SplitMix64, Xoshiro256pp};

/// Default number of cases per property, matching the budget the old
/// proptest suites used.
pub const DEFAULT_CASES: u64 = 64;

/// Runs `property` under the default case budget ([`DEFAULT_CASES`], or
/// `DETOUR_PROP_CASES` when set). Panics — preserving the property's own
/// panic — after printing the failing case's replay seed.
pub fn check(name: &str, property: impl Fn(&mut Xoshiro256pp)) {
    check_with(name, DEFAULT_CASES, property);
}

/// Like [`check`] with an explicit per-property case budget (still
/// overridden by `DETOUR_PROP_CASES`, so soaks scale everything at once).
pub fn check_with(name: &str, cases: u64, property: impl Fn(&mut Xoshiro256pp)) {
    if let Some(seed) = replay_seed() {
        run_case(name, 0, 1, seed, &property);
        return;
    }
    let cases = case_budget(cases);
    for i in 0..cases {
        run_case(name, i, cases, case_seed(name, i), &property);
    }
}

/// The seed the `i`-th case of `name` runs under. Deterministic across
/// platforms and releases: FNV-1a of the name, SplitMix64-mixed with the
/// index so neighbouring cases are uncorrelated.
pub fn case_seed(name: &str, i: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_0000_01b3);
    }
    SplitMix64::new(h ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15)).next_u64()
}

fn run_case(name: &str, i: u64, cases: u64, seed: u64, property: &impl Fn(&mut Xoshiro256pp)) {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    if catch_unwind(AssertUnwindSafe(|| property(&mut rng))).is_err() {
        // The replay instructions ride on the panic itself (libraries don't
        // write to stderr); the original panic message has already been
        // printed by the default hook inside `catch_unwind`.
        panic!(
            "property '{name}' failed on case {}/{cases} (case seed {seed:#018x}); \
             replay just this case with: DETOUR_PROP_SEED={seed:#x} cargo test -q",
            i + 1,
        );
    }
}

fn case_budget(default: u64) -> u64 {
    match std::env::var("DETOUR_PROP_CASES") {
        Ok(v) => v
            .parse()
            .unwrap_or_else(|_| panic!("DETOUR_PROP_CASES must be an integer, got {v:?}")),
        Err(_) => default,
    }
}

fn replay_seed() -> Option<u64> {
    let v = std::env::var("DETOUR_PROP_SEED").ok()?;
    let parsed = if let Some(hex) = v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        v.parse()
    };
    Some(parsed.unwrap_or_else(|_| panic!("DETOUR_PROP_SEED must be a u64, got {v:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn runs_the_full_case_budget() {
        let count = AtomicU64::new(0);
        check_with("budget", 17, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 17);
    }

    #[test]
    fn cases_see_distinct_deterministic_seeds() {
        assert_ne!(case_seed("p", 0), case_seed("p", 1));
        assert_ne!(case_seed("p", 0), case_seed("q", 0));
        assert_eq!(case_seed("p", 5), case_seed("p", 5));
    }

    #[test]
    fn failures_propagate_with_replay_guidance() {
        let err = std::panic::catch_unwind(|| {
            check_with("always fails", 8, |rng| {
                let x = rng.gen_range(0..10u32);
                assert!(x > 100, "drew {x}");
            });
        });
        assert!(err.is_err());
    }

    #[test]
    fn properties_draw_reproducible_inputs() {
        let first = AtomicU64::new(u64::MAX);
        for _ in 0..2 {
            check_with("reproducible", 1, |rng| {
                let v = rng.next_u64();
                let prev = first.swap(v, Ordering::Relaxed);
                if prev != u64::MAX {
                    assert_eq!(prev, v);
                }
            });
        }
    }
}
