//! # detour-prng
//!
//! Deterministic, dependency-free randomness for the whole workspace.
//!
//! The build environment is offline, so nothing in this repository may pull
//! crates.io dependencies; this crate replaces `rand` everywhere. It
//! provides:
//!
//! * [`SplitMix64`] — the seeding generator (Steele, Lea & Flood 2014).
//!   Every 64-bit seed, including 0, expands into a well-mixed state.
//! * [`Xoshiro256pp`] — xoshiro256++ (Blackman & Vigna 2019), the
//!   workhorse generator: 256 bits of state, period 2²⁵⁶ − 1, passes
//!   BigCrush, and is trivially cheap per draw.
//! * [`Rng`] — the minimal trait the workspace needs: `next_u64`, `f64`,
//!   `gen_range`, `gen_bool`, `shuffle`, `choose`.
//! * [`SliceRandom`] — slice-side `shuffle`/`choose`, mirroring the call
//!   style the codebase already uses (`hosts.shuffle(&mut rng)`).
//! * [`check`] — the deterministic property-test harness that replaces
//!   `proptest` (seeded case generation, fixed case budget, failing-seed
//!   reporting).
//!
//! Determinism is a hard API guarantee: the same seed yields the same
//! stream on every platform and at every optimization level, because all
//! figure/table regeneration and all tests key off it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::print_stdout, clippy::print_stderr)]

pub mod check;

/// SplitMix64: the canonical 64-bit seed expander.
///
/// Used to turn one user seed into the four xoshiro256++ state words and to
/// derive independent per-case seeds in the property harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates the expander from a raw seed (any value is fine).
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        SplitMix64::next_u64(self)
    }
}

/// xoshiro256++: the workspace's standard generator.
///
/// Seeded through [`SplitMix64`] so that nearby seeds (0, 1, 2, …) still
/// produce uncorrelated streams — the datasets use small consecutive seeds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Builds a generator from a single 64-bit seed via SplitMix64
    /// expansion (the name matches `rand::SeedableRng` for familiarity).
    pub fn seed_from_u64(seed: u64) -> Xoshiro256pp {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        // All-zero state would be a fixed point; SplitMix64 cannot produce
        // four zeros from one seed, but guard anyway.
        if s == [0, 0, 0, 0] {
            return Xoshiro256pp {
                s: [0x9E37_79B9_7F4A_7C15, 1, 2, 3],
            };
        }
        Xoshiro256pp { s }
    }

    /// The `index`-th generator of a counter-based stream family keyed by
    /// `key` — the seed-expansion machinery applied twice: the key is
    /// finalized once through [`SplitMix64`], advanced along the SplitMix64
    /// orbit by `index` golden-ratio steps, and the resulting state is
    /// expanded into a full xoshiro256++ state.
    ///
    /// Properties the measurement campaign relies on:
    ///
    /// * **Pure**: `stream(k, i)` is a function of `(k, i)` alone — no
    ///   shared state, so any number of threads can derive their streams
    ///   concurrently and a stream's output never depends on which other
    ///   streams were drawn, or in what order.
    /// * **Well mixed**: for a fixed key, the per-index seeds are exactly
    ///   consecutive SplitMix64 states, the construction SplitMix64 was
    ///   designed for; nearby indices yield uncorrelated streams.
    pub fn stream(key: u64, index: u64) -> Xoshiro256pp {
        let base = SplitMix64::new(key).next_u64();
        Xoshiro256pp::seed_from_u64(base.wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
    }

    /// Next 64-bit output (the ++ scrambler).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl Rng for Xoshiro256pp {
    fn next_u64(&mut self) -> u64 {
        Xoshiro256pp::next_u64(self)
    }
}

/// The minimal random-number interface the workspace needs.
///
/// Method names deliberately mirror `rand::Rng` so the migration away from
/// the external crate stayed mechanical: `gen_range`, `gen_bool`, and the
/// slice helpers behave like their namesakes on half-open and inclusive
/// ranges.
pub trait Rng {
    /// Next raw 64-bit output — everything else derives from this.
    fn next_u64(&mut self) -> u64;

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw from a half-open (`a..b`) or inclusive (`a..=b`) range
    /// of any primitive integer or float type.
    ///
    /// `T` is a free parameter (not an associated type) so inference flows
    /// both ways, exactly as with `rand`: `rng.gen_range(3..=5).min(n)`
    /// resolves the literal range to `usize` from the later use.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Fisher–Yates shuffle in place.
    fn shuffle<T>(&mut self, xs: &mut [T])
    where
        Self: Sized,
    {
        for i in (1..xs.len()).rev() {
            let j = self.gen_range(0..=i);
            xs.swap(i, j);
        }
    }

    /// Uniformly chosen element, `None` on an empty slice.
    fn choose<'a, T>(&mut self, xs: &'a [T]) -> Option<&'a T>
    where
        Self: Sized,
    {
        if xs.is_empty() {
            None
        } else {
            Some(&xs[self.gen_range(0..xs.len())])
        }
    }
}

impl<R: Rng> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A range that [`Rng::gen_range`] can sample uniformly for values of `T`.
pub trait SampleRange<T> {
    /// Draws one value from `rng`. Panics on an empty range.
    fn sample<R: Rng>(self, rng: &mut R) -> T;
}

/// Multiply-high mapping of a raw draw onto `[0, span)`.
///
/// The bias is at most `span / 2⁶⁴` — immaterial for simulation spans — and
/// the mapping consumes exactly one draw, which keeps streams aligned
/// across platforms.
fn map_to_span(raw: u64, span: u64) -> u64 {
    ((raw as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = map_to_span(rng.next_u64(), span);
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Only reachable for the full u64/i64 domain.
                    return rng.next_u64() as $t;
                }
                let off = map_to_span(rng.next_u64(), span as u64);
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let v = self.start + rng.f64() as $t * (self.end - self.start);
                // Rounding can land exactly on `end` for tiny spans; keep
                // the half-open contract.
                if v < self.end { v } else { self.start }
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                lo + rng.f64() as $t * (hi - lo)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Slice-side randomness helpers, mirroring `rand::seq::SliceRandom` so
/// call sites read `hosts.shuffle(&mut rng)`.
pub trait SliceRandom {
    /// Element type.
    type Item;
    /// Fisher–Yates shuffle in place.
    fn shuffle<R: Rng>(&mut self, rng: &mut R);
    /// Uniformly chosen element, `None` on an empty slice.
    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng>(&mut self, rng: &mut R) {
        rng.shuffle(self);
    }

    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
        rng.choose(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // First outputs for seed 1234567, from the public-domain reference
        // implementation (Vigna, prng.di.unimi.it).
        let mut sm = SplitMix64::new(1234567);
        assert_eq!(sm.next_u64(), 6457827717110365317);
        assert_eq!(sm.next_u64(), 3203168211198807973);
        assert_eq!(sm.next_u64(), 9817491932198370423);
    }

    #[test]
    fn xoshiro_is_deterministic_and_seed_sensitive() {
        let mut a = Xoshiro256pp::seed_from_u64(42);
        let mut b = Xoshiro256pp::seed_from_u64(42);
        let mut c = Xoshiro256pp::seed_from_u64(43);
        let va: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn f64_is_in_unit_interval_and_roughly_uniform() {
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn int_ranges_stay_in_bounds_and_hit_every_value() {
        let mut rng = Xoshiro256pp::seed_from_u64(9);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            let v = rng.gen_range(2..8usize);
            assert!((2..8).contains(&v));
            seen[v - 2] = true;
        }
        assert!(seen.iter().all(|&s| s), "some bucket never hit: {seen:?}");
        for _ in 0..1_000 {
            let v = rng.gen_range(-5..=5i32);
            assert!((-5..=5).contains(&v));
        }
    }

    #[test]
    fn float_ranges_respect_the_half_open_contract() {
        let mut rng = Xoshiro256pp::seed_from_u64(11);
        for _ in 0..10_000 {
            let v = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(v > 0.0 && v < 1.0);
            let w = rng.gen_range(-3.0..7.0f64);
            assert!((-3.0..7.0).contains(&w));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = Xoshiro256pp::seed_from_u64(13);
        let hits = (0..40_000).filter(|_| rng.gen_bool(0.2)).count();
        let frac = hits as f64 / 40_000.0;
        assert!((frac - 0.2).abs() < 0.01, "frac {frac}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation_and_choose_is_uniform_ish() {
        let mut rng = Xoshiro256pp::seed_from_u64(17);
        let mut xs: Vec<u32> = (0..50).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());

        let pool = [1u32, 2, 3, 4];
        let mut counts = [0usize; 4];
        for _ in 0..4_000 {
            counts[(*pool.choose(&mut rng).unwrap() - 1) as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c > 800), "{counts:?}");
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn streams_are_deterministic_and_distinct() {
        fn draws(key: u64, index: u64) -> Vec<u64> {
            let mut r = Xoshiro256pp::stream(key, index);
            (0..8).map(|_| r.next_u64()).collect()
        }
        assert_eq!(draws(5, 0), draws(5, 0), "same (key, index) must replay");
        assert_ne!(draws(5, 0), draws(5, 1), "adjacent indices must diverge");
        assert_ne!(draws(5, 0), draws(6, 0), "different keys must diverge");
    }

    #[test]
    fn stream_outputs_are_uniform_ish_across_indices() {
        // First draw of 4000 consecutive streams: roughly half the bits of
        // a fixed position should be set — catches a degenerate derivation
        // (e.g. forgetting to finalize the index).
        let ones = (0..4_000)
            .filter(|&i| Xoshiro256pp::stream(42, i).next_u64() & (1 << 31) != 0)
            .count();
        assert!((1_700..=2_300).contains(&ones), "bit bias: {ones}/4000");
    }

    #[test]
    fn rng_works_through_mutable_references() {
        let mut rng = Xoshiro256pp::seed_from_u64(19);
        fn draw(mut r: impl Rng) -> u64 {
            r.next_u64()
        }
        let direct = Xoshiro256pp::seed_from_u64(19).next_u64();
        assert_eq!(draw(&mut rng), direct);
    }
}
