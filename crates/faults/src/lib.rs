//! # detour-faults
//!
//! Deterministic fault injection for the simulate→measure→analyze
//! pipeline.
//!
//! The paper stresses (§4.2, §7) that its datasets *under-represent* bad
//! connectivity: failed measurements drop out of the traces, hosts go
//! down mid-campaign, and routes are withdrawn while BGP converges. To
//! study how the detour result degrades under exactly those conditions,
//! this crate provides a seeded, replayable fault model:
//!
//! * [`FaultConfig`] — the declarative knobs: link/router failure rates,
//!   BGP withdrawal/convergence transients, measurement-host outages,
//!   probe-timeout storms, and campaign truncation.
//! * [`FaultPlan`] — a config bound to a time horizon. Every schedule it
//!   hands out is derived *purely* from `(seed, domain, entity-code)`
//!   via [`detour_prng::Xoshiro256pp::stream`] counter streams, so the
//!   same seed replays the same faults regardless of thread count,
//!   query order, or which subset of entities a consumer asks about.
//! * [`OutageSchedule`] — alternating up/down renewal process for one
//!   entity (a link, a router, a measurement host, or the global storm
//!   process).
//! * [`WithdrawalSchedule`] — per ordered-AS-pair route withdrawals with
//!   a convergence tail: while withdrawn the route is gone entirely;
//!   while converging the source AS uses its second-choice route.
//!
//! Consumers precompute per-entity tables at build time (netsim's
//! `Network`, measure's campaign runner); nothing in this crate draws
//! from a shared RNG, so precomputation parallelizes freely without
//! affecting the schedules.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::print_stdout, clippy::print_stderr)]

use detour_prng::{Rng, Xoshiro256pp};

/// Domain-separation constants: each fault class draws from its own
/// counter-stream family so that, e.g., link 3 and router 3 fail
/// independently. (ASCII mnemonics, same convention as the measurement
/// request stream domain.)
mod domain {
    /// Physical link outages ("link").
    pub const LINK: u64 = 0x6661_756c_6c69_6e6b;
    /// Router outages ("rout").
    pub const ROUTER: u64 = 0x6661_756c_726f_7574;
    /// BGP withdrawal transients ("wdrw").
    pub const WITHDRAW: u64 = 0x6661_756c_7764_7277;
    /// Measurement-host outages ("host").
    pub const HOST: u64 = 0x6661_756c_686f_7374;
    /// Probe-timeout storms ("stor").
    pub const STORM: u64 = 0x6661_756c_7374_6f72;
}

/// Declarative fault-injection knobs.
///
/// Every fault class is an alternating renewal process parameterized by a
/// mean time between failures (`*_mtbf_s`) and a mean time to repair
/// (`*_mttr_s`). An infinite MTBF disables the class — the schedules it
/// would generate are empty, and consumers can skip building tables
/// entirely (see [`FaultConfig::network_faults`] /
/// [`FaultConfig::campaign_faults`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Seed for every fault stream (independent of the network and
    /// campaign seeds, so faults replay across both).
    pub seed: u64,
    /// Mean up-time between failures of one physical link, seconds.
    pub link_mtbf_s: f64,
    /// Mean repair time of a failed link, seconds.
    pub link_mttr_s: f64,
    /// Mean up-time between failures of one router, seconds.
    pub router_mtbf_s: f64,
    /// Mean repair time of a failed router, seconds.
    pub router_mttr_s: f64,
    /// Mean time between BGP withdrawals of one ordered AS-pair route,
    /// seconds.
    pub withdraw_mtbf_s: f64,
    /// Mean duration of the withdrawn (blackhole) phase, seconds.
    pub withdraw_mttr_s: f64,
    /// Fixed convergence tail after each withdrawal during which the
    /// source AS uses its second-choice route, seconds.
    pub convergence_s: f64,
    /// Mean up-time of one measurement host, seconds.
    pub host_mtbf_s: f64,
    /// Mean outage duration of a measurement host, seconds.
    pub host_mttr_s: f64,
    /// Mean time between global probe-timeout storms, seconds.
    pub storm_mtbf_s: f64,
    /// Mean storm duration, seconds.
    pub storm_mttr_s: f64,
    /// Multiplier applied to probe elapsed time during a storm (pushes
    /// probes past the campaign timeout). `1.0` = no slowdown.
    pub storm_slowdown: f64,
    /// Fraction of the campaign horizon after which every request is
    /// dropped (truncated/partial campaign). `1.0` = full campaign.
    pub truncate_frac: f64,
}

impl FaultConfig {
    /// No faults at all: every MTBF infinite, no truncation. This is the
    /// default threaded through every existing dataset spec; with it the
    /// pipeline is byte-identical to the pre-fault code paths.
    pub fn none() -> FaultConfig {
        FaultConfig {
            seed: 0,
            link_mtbf_s: f64::INFINITY,
            link_mttr_s: 0.0,
            router_mtbf_s: f64::INFINITY,
            router_mttr_s: 0.0,
            withdraw_mtbf_s: f64::INFINITY,
            withdraw_mttr_s: 0.0,
            convergence_s: 0.0,
            host_mtbf_s: f64::INFINITY,
            host_mttr_s: 0.0,
            storm_mtbf_s: f64::INFINITY,
            storm_mttr_s: 0.0,
            storm_slowdown: 1.0,
            truncate_frac: 1.0,
        }
    }

    /// Link failures only: each link fails about once per simulated day
    /// and stays down for ~20 minutes.
    pub fn link_failures(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            link_mtbf_s: 86_400.0,
            link_mttr_s: 1_200.0,
            ..FaultConfig::none()
        }
    }

    /// Router failures only: rarer than link failures (a router takes all
    /// its links down at once), ~45-minute repairs.
    pub fn router_failures(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            router_mtbf_s: 4.0 * 86_400.0,
            router_mttr_s: 2_700.0,
            ..FaultConfig::none()
        }
    }

    /// BGP withdrawal/convergence transients only: per ordered AS pair,
    /// a withdrawal every ~2 days blackholes the route for ~3 minutes and
    /// then routes via the second choice for a 5-minute convergence tail
    /// (Labovitz et al.'s delayed-convergence regime).
    pub fn withdrawals(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            withdraw_mtbf_s: 2.0 * 86_400.0,
            withdraw_mttr_s: 180.0,
            convergence_s: 300.0,
            ..FaultConfig::none()
        }
    }

    /// Measurement-host outages only: each host drops out about once per
    /// simulated day for ~2 hours (the paper lost whole hosts to exactly
    /// this).
    pub fn host_outages(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            host_mtbf_s: 86_400.0,
            host_mttr_s: 7_200.0,
            ..FaultConfig::none()
        }
    }

    /// Probe-timeout storms only: ~1-hour windows every ~2 days in which
    /// probe latency is inflated 50× — enough to push any probe past the
    /// campaign timeout.
    pub fn timeout_storms(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            storm_mtbf_s: 2.0 * 86_400.0,
            storm_mttr_s: 3_600.0,
            storm_slowdown: 50.0,
            ..FaultConfig::none()
        }
    }

    /// Truncated campaign only: the collection stops at 60% of the
    /// nominal horizon (host decommissioned mid-study).
    pub fn truncation(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            truncate_frac: 0.6,
            ..FaultConfig::none()
        }
    }

    /// Everything at once — the chaos-suite worst case.
    pub fn heavy(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            link_mtbf_s: 86_400.0,
            link_mttr_s: 1_200.0,
            router_mtbf_s: 4.0 * 86_400.0,
            router_mttr_s: 2_700.0,
            withdraw_mtbf_s: 2.0 * 86_400.0,
            withdraw_mttr_s: 180.0,
            convergence_s: 300.0,
            host_mtbf_s: 86_400.0,
            host_mttr_s: 7_200.0,
            storm_mtbf_s: 2.0 * 86_400.0,
            storm_mttr_s: 3_600.0,
            storm_slowdown: 50.0,
            truncate_frac: 0.85,
        }
    }

    /// Scales every failure *rate* by `intensity` (repair times and the
    /// convergence tail stay fixed; truncation is not part of the sweep).
    /// `intensity = 0` is [`FaultConfig::none`]; `intensity = 1` matches
    /// the per-class defaults above; `intensity = 2` fails twice as
    /// often. This is the knob the `outage_sweep` experiment turns.
    pub fn with_intensity(seed: u64, intensity: f64) -> FaultConfig {
        if intensity <= 0.0 {
            return FaultConfig::none();
        }
        FaultConfig {
            seed,
            link_mtbf_s: 86_400.0 / intensity,
            link_mttr_s: 1_200.0,
            router_mtbf_s: 4.0 * 86_400.0 / intensity,
            router_mttr_s: 2_700.0,
            withdraw_mtbf_s: 2.0 * 86_400.0 / intensity,
            withdraw_mttr_s: 180.0,
            convergence_s: 300.0,
            host_mtbf_s: 86_400.0 / intensity,
            host_mttr_s: 7_200.0,
            storm_mtbf_s: 4.0 * 86_400.0 / intensity,
            storm_mttr_s: 1_800.0,
            storm_slowdown: 50.0,
            truncate_frac: 1.0,
        }
    }

    /// True when any fault class is active.
    pub fn enabled(&self) -> bool {
        self.network_faults() || self.campaign_faults()
    }

    /// True when link, router, or withdrawal faults are active — the
    /// classes netsim must build tables for.
    pub fn network_faults(&self) -> bool {
        self.link_mtbf_s.is_finite()
            || self.router_mtbf_s.is_finite()
            || self.withdraw_mtbf_s.is_finite()
    }

    /// True when host outages, storms, or truncation are active — the
    /// classes the measurement campaign must handle.
    pub fn campaign_faults(&self) -> bool {
        self.host_mtbf_s.is_finite() || self.storm_mtbf_s.is_finite() || self.truncate_frac < 1.0
    }
}

/// Folds one materialized schedule's episode count into the calling
/// thread's `detour-obs` recorder. Schedules are pure functions of
/// `(seed, domain, code)`, so these counters are deterministic in the
/// plan — thread-count-invariant even when consumers build their fault
/// tables on the pool.
fn record_episodes(counter: &str, episodes: usize) {
    detour_obs::current().add(counter, episodes as u64);
}

/// A [`FaultConfig`] bound to a time horizon: the factory every consumer
/// uses to materialize per-entity schedules. All methods are pure
/// functions of `(config.seed, domain, entity code)` — calling them in
/// any order, from any thread, for any subset of entities yields the
/// same schedules.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    /// The fault knobs.
    pub cfg: FaultConfig,
    /// Schedule horizon, seconds (the campaign/trace duration).
    pub horizon_s: f64,
}

impl FaultPlan {
    /// Binds `cfg` to a horizon.
    pub fn new(cfg: FaultConfig, horizon_s: f64) -> FaultPlan {
        FaultPlan { cfg, horizon_s }
    }

    /// Outage schedule for physical link `link_code`.
    pub fn link_schedule(&self, link_code: u64) -> OutageSchedule {
        let sched = OutageSchedule::generate(
            self.cfg.seed,
            domain::LINK,
            link_code,
            self.cfg.link_mtbf_s,
            self.cfg.link_mttr_s,
            self.horizon_s,
        );
        record_episodes("faults/link_episodes", sched.episode_count());
        sched
    }

    /// Outage schedule for router `router_code`.
    pub fn router_schedule(&self, router_code: u64) -> OutageSchedule {
        let sched = OutageSchedule::generate(
            self.cfg.seed,
            domain::ROUTER,
            router_code,
            self.cfg.router_mtbf_s,
            self.cfg.router_mttr_s,
            self.horizon_s,
        );
        record_episodes("faults/router_episodes", sched.episode_count());
        sched
    }

    /// Withdrawal schedule for the ordered AS pair `(src, dst)` (ids
    /// packed by the caller; direction-sensitive like route flaps).
    pub fn withdrawal_schedule(&self, src: u16, dst: u16) -> WithdrawalSchedule {
        let code = ((src as u64) << 16) | dst as u64;
        let episodes = OutageSchedule::generate(
            self.cfg.seed,
            domain::WITHDRAW,
            code,
            self.cfg.withdraw_mtbf_s,
            self.cfg.withdraw_mttr_s,
            self.horizon_s,
        );
        record_episodes("faults/withdrawal_episodes", episodes.episode_count());
        WithdrawalSchedule {
            episodes,
            convergence_s: self.cfg.convergence_s,
        }
    }

    /// Outage schedule for measurement host `host_code`.
    pub fn host_schedule(&self, host_code: u64) -> OutageSchedule {
        let sched = OutageSchedule::generate(
            self.cfg.seed,
            domain::HOST,
            host_code,
            self.cfg.host_mtbf_s,
            self.cfg.host_mttr_s,
            self.horizon_s,
        );
        record_episodes("faults/host_episodes", sched.episode_count());
        sched
    }

    /// The single global probe-timeout storm schedule.
    pub fn storm_schedule(&self) -> OutageSchedule {
        let sched = OutageSchedule::generate(
            self.cfg.seed,
            domain::STORM,
            0,
            self.cfg.storm_mtbf_s,
            self.cfg.storm_mttr_s,
            self.horizon_s,
        );
        record_episodes("faults/storm_episodes", sched.episode_count());
        sched
    }

    /// Time after which the campaign is truncated, or `None` when it
    /// runs to completion.
    pub fn truncation_cutoff_s(&self) -> Option<f64> {
        (self.cfg.truncate_frac < 1.0).then(|| self.cfg.truncate_frac.max(0.0) * self.horizon_s)
    }
}

/// Sorted, non-overlapping `(start, end)` down-time episodes for one
/// entity over `[0, horizon)`, generated by an alternating exponential
/// up/down renewal process.
#[derive(Debug, Clone, PartialEq)]
pub struct OutageSchedule {
    episodes: Vec<(f64, f64)>,
}

impl OutageSchedule {
    /// An always-up schedule.
    pub fn empty() -> OutageSchedule {
        OutageSchedule {
            episodes: Vec::new(),
        }
    }

    /// Generates the schedule for one entity. Deterministic in
    /// `(seed, domain_key, code)` alone: the RNG is a dedicated counter
    /// stream, so no other entity's schedule shifts this one.
    pub fn generate(
        seed: u64,
        domain_key: u64,
        code: u64,
        mtbf_s: f64,
        mttr_s: f64,
        horizon_s: f64,
    ) -> OutageSchedule {
        if !mtbf_s.is_finite() || mtbf_s <= 0.0 || mttr_s <= 0.0 || horizon_s <= 0.0 {
            return OutageSchedule::empty();
        }
        let mut rng = Xoshiro256pp::stream(seed ^ domain_key, code);
        let mut episodes = Vec::new();
        let mut t = exponential(&mut rng, mtbf_s);
        while t < horizon_s {
            let dur = exponential(&mut rng, mttr_s).max(1.0);
            let end = (t + dur).min(horizon_s);
            episodes.push((t, end));
            t = end + exponential(&mut rng, mtbf_s);
        }
        OutageSchedule { episodes }
    }

    /// True when the entity is down at time `t` (seconds).
    pub fn down_at(&self, t: f64) -> bool {
        let i = self.episodes.partition_point(|&(start, _)| start <= t);
        i > 0 && t < self.episodes[i - 1].1
    }

    /// Number of down-time episodes in the horizon.
    pub fn episode_count(&self) -> usize {
        self.episodes.len()
    }

    /// Total down time, seconds.
    pub fn total_down_s(&self) -> f64 {
        self.episodes.iter().map(|(s, e)| e - s).sum()
    }

    /// The raw episodes (for serialization/diagnostics).
    pub fn episodes(&self) -> &[(f64, f64)] {
        &self.episodes
    }
}

/// Routing state of one ordered AS-pair route at a point in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutePhase {
    /// The best route is installed and stable.
    Stable,
    /// The route is withdrawn and no replacement has propagated: traffic
    /// is blackholed.
    Withdrawn,
    /// The withdrawal has been replaced by the second-choice route while
    /// BGP converges back to the best path.
    Converging,
}

/// Withdrawal episodes for one ordered AS pair, each followed by a fixed
/// convergence tail.
#[derive(Debug, Clone, PartialEq)]
pub struct WithdrawalSchedule {
    episodes: OutageSchedule,
    convergence_s: f64,
}

impl WithdrawalSchedule {
    /// A never-withdrawn schedule.
    pub fn empty() -> WithdrawalSchedule {
        WithdrawalSchedule {
            episodes: OutageSchedule::empty(),
            convergence_s: 0.0,
        }
    }

    /// Routing phase at time `t` (seconds).
    pub fn phase_at(&self, t: f64) -> RoutePhase {
        let eps = &self.episodes.episodes;
        let i = eps.partition_point(|&(start, _)| start <= t);
        if i == 0 {
            return RoutePhase::Stable;
        }
        let (_, end) = eps[i - 1];
        if t < end {
            RoutePhase::Withdrawn
        } else if t < end + self.convergence_s {
            RoutePhase::Converging
        } else {
            RoutePhase::Stable
        }
    }

    /// Number of withdrawal episodes in the horizon.
    pub fn episode_count(&self) -> usize {
        self.episodes.episode_count()
    }
}

/// Exponential deviate with the given mean (same transform as the flap
/// scheduler's).
fn exponential(rng: &mut impl Rng, mean: f64) -> f64 {
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -mean * u.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    const DAY: f64 = 86_400.0;

    #[test]
    fn none_config_generates_no_faults() {
        let plan = FaultPlan::new(FaultConfig::none(), 7.0 * DAY);
        assert!(!plan.cfg.enabled());
        assert_eq!(plan.link_schedule(3).episode_count(), 0);
        assert_eq!(plan.router_schedule(3).episode_count(), 0);
        assert_eq!(plan.host_schedule(3).episode_count(), 0);
        assert_eq!(plan.storm_schedule().episode_count(), 0);
        assert_eq!(plan.withdrawal_schedule(1, 2).episode_count(), 0);
        assert_eq!(plan.truncation_cutoff_s(), None);
    }

    #[test]
    fn schedules_are_replayable() {
        let plan = FaultPlan::new(FaultConfig::heavy(42), 7.0 * DAY);
        for code in 0..50u64 {
            assert_eq!(plan.link_schedule(code), plan.link_schedule(code));
            assert_eq!(plan.host_schedule(code), plan.host_schedule(code));
        }
        assert_eq!(
            plan.withdrawal_schedule(3, 9),
            plan.withdrawal_schedule(3, 9)
        );
    }

    #[test]
    fn fault_classes_are_domain_separated() {
        // Same entity code, different class → independent schedules.
        let plan = FaultPlan::new(FaultConfig::heavy(42), 30.0 * DAY);
        assert_ne!(plan.link_schedule(5), plan.router_schedule(5));
        assert_ne!(plan.link_schedule(5), plan.host_schedule(5));
    }

    #[test]
    fn entities_fail_independently() {
        let plan = FaultPlan::new(FaultConfig::link_failures(7), 30.0 * DAY);
        assert_ne!(plan.link_schedule(0), plan.link_schedule(1));
    }

    #[test]
    fn episodes_sorted_disjoint_and_clamped() {
        let plan = FaultPlan::new(FaultConfig::heavy(9), 7.0 * DAY);
        for code in 0..40u64 {
            let s = plan.link_schedule(code);
            for w in s.episodes().windows(2) {
                assert!(w[0].1 <= w[1].0, "overlap: {:?}", s.episodes());
            }
            for &(start, end) in s.episodes() {
                assert!(start >= 0.0 && end <= 7.0 * DAY && start < end);
            }
        }
    }

    #[test]
    fn down_queries_match_episodes() {
        let plan = FaultPlan::new(FaultConfig::host_outages(11), 14.0 * DAY);
        let s = plan.host_schedule(4);
        assert!(
            s.episode_count() > 0,
            "14 days at 1/day MTBF should fail at least once"
        );
        for &(start, end) in s.episodes() {
            assert!(s.down_at(start));
            assert!(s.down_at((start + end) / 2.0));
            assert!(!s.down_at(end));
        }
        assert!(!s.down_at(-1.0));
    }

    #[test]
    fn withdrawal_phases_cover_blackhole_then_convergence() {
        let plan = FaultPlan::new(FaultConfig::withdrawals(13), 30.0 * DAY);
        // Scan pairs until one has an episode with a clean convergence
        // window (deterministic, so the scan is stable).
        let mut checked = false;
        'outer: for a in 0..20u16 {
            for b in 0..20u16 {
                let w = plan.withdrawal_schedule(a, b);
                let eps = w.episodes.episodes.clone();
                for &(start, end) in &eps {
                    if end + 300.0 < 30.0 * DAY {
                        assert_eq!(w.phase_at((start + end) / 2.0), RoutePhase::Withdrawn);
                        assert_eq!(w.phase_at(end + 1.0), RoutePhase::Converging);
                        assert_eq!(w.phase_at(end + 301.0), RoutePhase::Stable);
                        assert_eq!(w.phase_at(start - 1.0), RoutePhase::Stable);
                        checked = true;
                        break 'outer;
                    }
                }
            }
        }
        assert!(
            checked,
            "no withdrawal episode found across 400 pairs in 30 days"
        );
    }

    #[test]
    fn intensity_scales_failure_frequency() {
        let horizon = 30.0 * DAY;
        let count = |x: f64| {
            let plan = FaultPlan::new(FaultConfig::with_intensity(5, x), horizon);
            (0..60u64)
                .map(|c| plan.link_schedule(c).episode_count())
                .sum::<usize>()
        };
        assert_eq!(count(0.0), 0);
        let low = count(0.5);
        let high = count(4.0);
        assert!(low > 0, "intensity 0.5 over 30 days must fail sometimes");
        assert!(
            high > 2 * low,
            "4x intensity should fail much more often ({high} vs {low})"
        );
    }

    #[test]
    fn truncation_cutoff_scales_with_horizon() {
        let plan = FaultPlan::new(FaultConfig::truncation(1), 1000.0);
        assert_eq!(plan.truncation_cutoff_s(), Some(600.0));
        assert!(FaultConfig::truncation(1).campaign_faults());
        assert!(!FaultConfig::truncation(1).network_faults());
    }

    #[test]
    fn scenario_ctors_enable_exactly_their_class() {
        assert!(FaultConfig::link_failures(1).network_faults());
        assert!(!FaultConfig::link_failures(1).campaign_faults());
        assert!(FaultConfig::host_outages(1).campaign_faults());
        assert!(!FaultConfig::host_outages(1).network_faults());
        assert!(FaultConfig::timeout_storms(1).campaign_faults());
        assert!(FaultConfig::heavy(1).network_faults() && FaultConfig::heavy(1).campaign_faults());
        assert!(!FaultConfig::none().enabled());
    }
}
