//! # detour
//!
//! A production-quality Rust reproduction of *"The End-to-End Effects of
//! Internet Path Selection"* (Savage, Collins, Hoffman, Snell, Anderson —
//! SIGCOMM 1999).
//!
//! The paper measured path quality (round-trip time, loss rate, bandwidth)
//! between pairs of Internet hosts and showed that for 30–80 % of host
//! pairs a *synthetic alternate path* — detouring through other measured
//! hosts — beats the default path the Internet's routing selected. This
//! workspace rebuilds the whole system:
//!
//! * [`netsim`] — an Internet substrate: hierarchical AS topology,
//!   BGP-style policy routing with hot-potato exits, diurnal load, queuing
//!   delay and loss, simulated `traceroute`/`ping`/TCP probes;
//! * [`measure`] — the measurement machinery: schedulers, control host,
//!   ICMP rate-limit detection, dataset assembly;
//! * [`datasets`] — the five dataset configurations of the paper
//!   (D2, N2, UW1, UW3, UW4-A/B);
//! * [`core`] — the paper's contribution: the measurement graph, metric
//!   composition, best-alternate-path search and every analysis behind
//!   Figures 1–16 and Tables 1–3;
//! * [`stats`] — the supporting statistics (CDFs, convolution, Student-t,
//!   confidence intervals, t-tests).
//!
//! ## Quickstart
//!
//! ```
//! use detour::datasets::DatasetId;
//! use detour::core::{MeasurementGraph, metric::Rtt, altpath::best_alternate};
//!
//! // Generate a small deterministic dataset over the simulated Internet.
//! let ds = DatasetId::Uw3.generate_scaled(10, 24);
//! let graph = MeasurementGraph::from_dataset(&ds);
//! let mut improved = 0;
//! let mut total = 0;
//! for pair in graph.pairs() {
//!     if let Some(cmp) = best_alternate(&graph, pair, &Rtt) {
//!         total += 1;
//!         if cmp.alternate_wins() {
//!             improved += 1;
//!         }
//!     }
//! }
//! assert!(total > 0);
//! println!("{improved}/{total} pairs have a faster alternate path");
//! ```

#![forbid(unsafe_code)]

pub use detour_core as core;
pub use detour_datasets as datasets;
pub use detour_faults as faults;
pub use detour_measure as measure;
pub use detour_netsim as netsim;
pub use detour_obs as obs;
pub use detour_overlay as overlay;
pub use detour_prng as prng;
pub use detour_stats as stats;
